#include "bpred/trainer.hh"

#include <algorithm>
#include <stdexcept>
#include <unordered_map>
#include <utility>

#include "flow/batch.hh"
#include "sim/sweep.hh"
#include "support/history.hh"

namespace autofsm
{

std::vector<std::pair<uint64_t, uint64_t>>
profileBaselineMisses(const BranchTrace &trace, const BtbConfig &baseline,
                      BaselineBtbProfile *profile)
{
    // BtbKernel is the bit-exact kernel replica of XScaleBtb (packed
    // entries, fused predict+update, no per-lookup atomics); sweep_test
    // pins the identity, so the profile is unchanged and the pass runs
    // at kernel speed.
    BtbKernel btb(baseline);
    std::unordered_map<uint64_t, uint64_t> misses;
    uint64_t total = 0;
    for (const auto &record : trace) {
        if (btb.step(record.pc, record.taken)) {
            ++misses[record.pc];
            ++total;
        }
    }
    if (profile) {
        profile->valid = true;
        profile->mispredicts = total;
        profile->lookups = btb.lookups();
        profile->hits = btb.hits();
        profile->area = btb.area();
        profile->name = btb.name();
    }

    std::vector<std::pair<uint64_t, uint64_t>> ranked(misses.begin(),
                                                      misses.end());
    std::sort(ranked.begin(), ranked.end(),
              [](const auto &a, const auto &b) {
                  if (a.second != b.second)
                      return a.second > b.second;
                  return a.first < b.first; // deterministic tie-break
              });
    return ranked;
}

std::vector<BranchModelSweep>
collectBranchModelSweeps(const BranchTrace &trace,
                         const std::vector<int> &orders,
                         const CustomTrainingOptions &options,
                         BaselineBtbProfile *profile)
{
    if (orders.empty())
        throw std::invalid_argument("collectBranchModelSweeps: no orders");
    const int max_order =
        *std::max_element(orders.begin(), orders.end());

    const auto ranked =
        profileBaselineMisses(trace, options.baseline, profile);
    const size_t count = std::min(
        ranked.size(), static_cast<size_t>(options.maxCustomBranches));

    // Second pass: one flat counter per selected branch, fed with the
    // global history register content at each execution of that branch.
    // One walk counts at max_order; finish() folds out every lower
    // order. The same pass records where each selected branch executes
    // - the sweep engine replays machines at exactly these positions.
    std::unordered_map<uint64_t, size_t> slots;
    std::vector<MultiOrderCounter> counters;
    std::vector<std::vector<uint32_t>> positions(count);
    counters.reserve(count);
    for (size_t i = 0; i < count; ++i) {
        slots.emplace(ranked[i].first, i);
        counters.emplace_back(max_order);
    }

    HistoryRegister global(max_order);
    int pushes = 0; // global outcomes seen, saturating at max_order
    uint32_t index = 0;
    for (const auto &record : trace) {
        const auto it = slots.find(record.pc);
        if (it != slots.end()) {
            positions[it->second].push_back(index);
            counters[it->second].observe(global.value(), pushes,
                                         record.taken ? 1 : 0);
        }
        global.push(record.taken ? 1 : 0);
        if (pushes < max_order)
            ++pushes;
        ++index;
    }

    std::vector<BranchModelSweep> sweeps;
    sweeps.reserve(count);
    for (size_t i = 0; i < count; ++i) {
        BranchModelSweep sweep;
        sweep.pc = ranked[i].first;
        sweep.baselineMisses = ranked[i].second;
        sweep.profile = counters[i].finish(orders);
        sweep.positions = std::move(positions[i]);
        sweeps.push_back(std::move(sweep));
    }
    return sweeps;
}

std::vector<BranchModel>
collectBranchModels(const BranchTrace &trace,
                    const CustomTrainingOptions &options,
                    BaselineBtbProfile *profile)
{
    std::vector<BranchModelSweep> sweeps = collectBranchModelSweeps(
        trace, {options.historyLength}, options, profile);

    std::vector<BranchModel> candidates;
    candidates.reserve(sweeps.size());
    for (BranchModelSweep &sweep : sweeps) {
        BranchModel candidate;
        candidate.pc = sweep.pc;
        candidate.baselineMisses = sweep.baselineMisses;
        candidate.model = sweep.profile.takeModel(options.historyLength);
        candidate.positions = std::move(sweep.positions);
        candidates.push_back(std::move(candidate));
    }
    return candidates;
}

std::vector<TrainedBranch>
trainCustomPredictors(const BranchTrace &trace,
                      const CustomTrainingOptions &options,
                      BaselineBtbProfile *profile)
{
    std::vector<BranchModel> candidates =
        collectBranchModels(trace, options, profile);

    FsmDesignOptions design;
    design.order = options.historyLength;
    design.patterns = options.patterns;
    design.minimizer = options.minimizer;

    std::vector<MarkovModel> models;
    models.reserve(candidates.size());
    for (const auto &candidate : candidates)
        models.push_back(candidate.model);

    BatchOptions batch_options;
    batch_options.threads = options.threads;
    BatchDesigner designer(design, batch_options);
    std::vector<BatchItemResult> designed = designer.designAll(models);

    std::vector<TrainedBranch> trained;
    trained.reserve(candidates.size());
    for (size_t i = 0; i < candidates.size(); ++i) {
        if (!designed[i].ok) {
            // The models are built in-process at the right order, so a
            // failure here is a programming error, not bad input.
            throw std::runtime_error("custom predictor design failed for pc " +
                                     std::to_string(candidates[i].pc) +
                                     ": " + designed[i].error);
        }
        TrainedBranch branch;
        branch.pc = candidates[i].pc;
        branch.baselineMisses = candidates[i].baselineMisses;
        branch.design = std::move(designed[i].flow.design);
        branch.trace = std::move(designed[i].flow.trace);
        branch.fsmArea = estimateFsmArea(branch.design.fsm);
        branch.trainPositions = std::move(candidates[i].positions);
        trained.push_back(std::move(branch));
    }
    return trained;
}

} // namespace autofsm
