/**
 * @file
 * The paper's customized branch prediction architecture (Figure 3):
 * an XScale-style coupled BTB extended with fully-associative custom
 * entries, each holding a tag, a target, and a hard-wired FSM predictor
 * generated for one specific branch. All custom FSMs are updated in
 * parallel on *every* dynamic branch (Section 7.3), so each machine is
 * guaranteed to sit in the right state whenever its branch is fetched
 * (Section 7.6).
 */

#ifndef AUTOFSM_BPRED_CUSTOM_HH
#define AUTOFSM_BPRED_CUSTOM_HH

#include <vector>

#include "bpred/btb.hh"
#include "fsmgen/predictor_fsm.hh"
#include "support/stats.hh"

namespace autofsm
{

/** Per-custom-entry storage parameters. */
struct CustomEntryConfig
{
    int tagBits = 30;    ///< fully-associative tag (CAM bits)
    int targetBits = 32; ///< branch target
};

/** The customized architecture: baseline BTB + custom FSM entries. */
class CustomBranchPredictor final : public BranchPredictor
{
  public:
    /**
     * @param btb Baseline BTB geometry.
     * @param entry_config Per-custom-entry storage parameters.
     * @param area_line states -> area model for the FSM logic, fitted a
     *        la Figure 4 (pass {0,0,0} to charge zero FSM logic area).
     * @param costs Technology constants.
     */
    CustomBranchPredictor(const BtbConfig &btb = {},
                          const CustomEntryConfig &entry_config = {},
                          const LineFit &area_line = {},
                          const AreaCosts &costs = {});

    /**
     * Lock down a custom entry for the branch at @p pc driven by
     * @p fsm. Insertion order is preserved for lookups.
     */
    void addCustomEntry(uint64_t pc, const Dfa &fsm);

    bool predict(uint64_t pc) const override;
    void update(uint64_t pc, bool taken) override;
    double area() const override;
    std::string name() const override;

    size_t numCustomEntries() const { return entries_.size(); }

    /** True iff @p pc has a custom entry. */
    bool isCustom(uint64_t pc) const;

    /** The baseline BTB (for tests and inspection). */
    const XScaleBtb &btb() const { return btb_; }

  private:
    struct CustomEntry
    {
        uint64_t pc;
        PredictorFsm fsm;
        double fsmArea;
    };

    XScaleBtb btb_;
    CustomEntryConfig entryConfig_;
    LineFit areaLine_;
    AreaCosts costs_;
    std::vector<CustomEntry> entries_;
};

} // namespace autofsm

#endif // AUTOFSM_BPRED_CUSTOM_HH
