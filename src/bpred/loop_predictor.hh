/**
 * @file
 * Loop termination predictor (Sherwood & Calder, HPC 2000 - the
 * paper's reference [35]).
 *
 * Section 7.5 observes that compress's dominant branch "would benefit
 * from having a loop count instruction ... or could easily be captured
 * via customizing the branch predictor to perform loop termination
 * prediction". This unit is that customization: it learns the trip
 * count of a loop-exit branch and predicts not-taken exactly on the
 * learned final iteration. Used as an alternative custom-entry type
 * next to the generated FSMs.
 */

#ifndef AUTOFSM_BPRED_LOOP_PREDICTOR_HH
#define AUTOFSM_BPRED_LOOP_PREDICTOR_HH

#include <cstdint>

namespace autofsm
{

/**
 * Per-branch loop termination unit.
 *
 * Convention: a loop-exit branch is taken (trip-1) times per loop
 * instance and then not-taken once.
 */
class LoopTerminationUnit
{
  public:
    /** Prediction for the next execution of the loop branch. */
    bool
    predict() const
    {
        // Predict the exit only once the same trip count has been seen
        // twice in a row (two-delta-style confidence).
        if (confident_ && iteration_ + 1 == trip_)
            return false;
        return true;
    }

    /** Train with the branch's resolved direction. */
    void
    update(bool taken)
    {
        if (taken) {
            ++iteration_;
            return;
        }
        const uint32_t observed_trip = iteration_ + 1;
        confident_ = observed_trip == trip_;
        trip_ = observed_trip;
        iteration_ = 0;
    }

    /** Learned trip count (0 before the first full loop instance). */
    uint32_t trip() const { return trip_; }

    /** Whether the trip count has repeated and exits are predicted. */
    bool confident() const { return confident_; }

    /** Storage bits of one unit: two iteration counters + state. */
    static constexpr int StorageBits = 2 * 16 + 1;

  private:
    uint32_t iteration_ = 0;
    uint32_t trip_ = 0;
    bool confident_ = false;
};

} // namespace autofsm

#endif // AUTOFSM_BPRED_LOOP_PREDICTOR_HH
