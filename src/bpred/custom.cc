#include "bpred/custom.hh"

namespace autofsm
{

CustomBranchPredictor::CustomBranchPredictor(
    const BtbConfig &btb, const CustomEntryConfig &entry_config,
    const LineFit &area_line, const AreaCosts &costs)
    : btb_(btb, costs), entryConfig_(entry_config), areaLine_(area_line),
      costs_(costs)
{}

void
CustomBranchPredictor::addCustomEntry(uint64_t pc, const Dfa &fsm)
{
    entries_.push_back(
        {pc, PredictorFsm(fsm),
         areaLine_.at(static_cast<double>(fsm.numStates()))});
}

bool
CustomBranchPredictor::isCustom(uint64_t pc) const
{
    for (const auto &entry : entries_) {
        if (entry.pc == pc)
            return true;
    }
    return false;
}

bool
CustomBranchPredictor::predict(uint64_t pc) const
{
    // Fully-associative custom lookup wins over the BTB.
    for (const auto &entry : entries_) {
        if (entry.pc == pc)
            return entry.fsm.predict() != 0;
    }
    return btb_.predict(pc);
}

void
CustomBranchPredictor::update(uint64_t pc, bool taken)
{
    // The baseline BTB trains normally on its own branch...
    btb_.update(pc, taken);
    // ...while every custom FSM steps on every dynamic branch.
    for (auto &entry : entries_)
        entry.fsm.update(taken ? 1 : 0);
}

double
CustomBranchPredictor::area() const
{
    double total = btb_.area();
    for (const auto &entry : entries_) {
        total += entryConfig_.tagBits * costs_.camBit +
            entryConfig_.targetBits * costs_.sramBit + entry.fsmArea;
    }
    return total;
}

std::string
CustomBranchPredictor::name() const
{
    return "custom-" + std::to_string(entries_.size()) + "fsm";
}

} // namespace autofsm
