/**
 * @file
 * Deterministic pseudo-random number generation for workload synthesis.
 *
 * All synthetic workloads in this repository must be exactly reproducible
 * across runs and platforms, so we use a self-contained xoshiro256**
 * implementation instead of std::mt19937 (whose distributions are not
 * guaranteed to be portable).
 */

#ifndef AUTOFSM_SUPPORT_RNG_HH
#define AUTOFSM_SUPPORT_RNG_HH

#include <cstdint>

namespace autofsm
{

/**
 * xoshiro256** 1.0 pseudo-random generator (Blackman & Vigna).
 *
 * Seeded through splitmix64 so that any 64-bit seed, including 0, yields a
 * well-mixed state. The generator is deliberately minimal: the workload
 * models only need uniform integers, uniform doubles in [0,1), and
 * Bernoulli draws.
 */
class Rng
{
  public:
    /** Construct from a 64-bit seed; equal seeds give equal streams. */
    explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL) { reseed(seed); }

    /** Reset the generator state from @p seed. */
    void
    reseed(uint64_t seed)
    {
        // splitmix64 expansion of the seed into the four state words.
        uint64_t x = seed;
        for (auto &word : state_) {
            x += 0x9e3779b97f4a7c15ULL;
            uint64_t z = x;
            z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
            z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
            word = z ^ (z >> 31);
        }
    }

    /** Next raw 64-bit value. */
    uint64_t
    next()
    {
        const uint64_t result = rotl(state_[1] * 5, 7) * 9;
        const uint64_t t = state_[1] << 17;
        state_[2] ^= state_[0];
        state_[3] ^= state_[1];
        state_[1] ^= state_[2];
        state_[0] ^= state_[3];
        state_[2] ^= t;
        state_[3] = rotl(state_[3], 45);
        return result;
    }

    /** Uniform integer in [0, bound). @p bound must be non-zero. */
    uint64_t
    below(uint64_t bound)
    {
        // Rejection-free multiply-shift reduction; bias is negligible for
        // the bounds used by workload models (all far below 2^32).
        return static_cast<uint64_t>(
            (static_cast<__uint128_t>(next()) * bound) >> 64);
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

    /** Bernoulli draw: true with probability @p p. */
    bool chance(double p) { return uniform() < p; }

  private:
    static uint64_t
    rotl(uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    uint64_t state_[4];
};

} // namespace autofsm

#endif // AUTOFSM_SUPPORT_RNG_HH
