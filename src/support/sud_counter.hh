/**
 * @file
 * Saturating up/down (SUD) counters (Section 3.1).
 *
 * The four defining values of the paper's SUD counter: saturation
 * threshold (max), correct increment, wrong decrement, and prediction
 * threshold. The classic 2-bit branch counter and every confidence
 * counter configuration of Figure 2 are instances. A "full" wrong
 * decrement (reset to zero on a miss) gives the resetting counters of
 * Jacobsen et al.
 */

#ifndef AUTOFSM_SUPPORT_SUD_COUNTER_HH
#define AUTOFSM_SUPPORT_SUD_COUNTER_HH

#include <cassert>

namespace autofsm
{

/** Configuration of a saturating up/down counter. */
struct SudConfig
{
    int max = 3;       ///< saturation threshold (counter range [0, max])
    int increment = 1; ///< added on a 1 (correct / taken)
    int decrement = 1; ///< subtracted on a 0; >= max+1 acts as a reset
    int threshold = 2; ///< predict 1 / high-confidence iff value >= this

    /** The ubiquitous 2-bit branch counter. */
    static SudConfig
    twoBit()
    {
        return {3, 1, 1, 2};
    }

    /** Resetting counter: any miss clears the count. */
    static SudConfig
    resetting(int max, int threshold)
    {
        return {max, 1, max + 1, threshold};
    }
};

/** One SUD counter instance. */
class SudCounter
{
  public:
    explicit SudCounter(const SudConfig &config, int initial = 0)
        : config_(config), value_(initial)
    {
        assert(config.max >= 1);
        assert(config.increment >= 1 && config.decrement >= 1);
        assert(config.threshold >= 0 && config.threshold <= config.max + 1);
        assert(initial >= 0 && initial <= config.max);
    }

    /** Current prediction / confidence decision. */
    bool predict() const { return value_ >= config_.threshold; }

    /** Advance on the observed @p outcome. */
    void
    update(bool outcome)
    {
        if (outcome) {
            value_ += config_.increment;
            if (value_ > config_.max)
                value_ = config_.max;
        } else {
            value_ -= config_.decrement;
            if (value_ < 0)
                value_ = 0;
        }
    }

    int value() const { return value_; }
    const SudConfig &config() const { return config_; }

  private:
    SudConfig config_;
    int value_;
};

} // namespace autofsm

#endif // AUTOFSM_SUPPORT_SUD_COUNTER_HH
