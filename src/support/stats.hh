/**
 * @file
 * Running statistics and least-squares fitting.
 *
 * The area model of Section 7.4 fits a straight line through
 * (state-count, area) samples; RunningStats backs the various rate
 * counters reported by the simulators.
 */

#ifndef AUTOFSM_SUPPORT_STATS_HH
#define AUTOFSM_SUPPORT_STATS_HH

#include <cstdint>
#include <vector>

namespace autofsm
{

/** Streaming mean/variance/min/max accumulator (Welford's algorithm). */
class RunningStats
{
  public:
    /** Add one observation. */
    void add(double x);

    /** Number of observations added. */
    uint64_t count() const { return count_; }

    /** Arithmetic mean; 0 when empty. */
    double mean() const { return count_ ? mean_ : 0.0; }

    /** Population variance; 0 with fewer than two observations. */
    double variance() const;

    /** Smallest observation; 0 when empty. */
    double min() const { return count_ ? min_ : 0.0; }

    /** Largest observation; 0 when empty. */
    double max() const { return count_ ? max_ : 0.0; }

    /** Sum of all observations. */
    double sum() const { return sum_; }

  private:
    uint64_t count_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
    double sum_ = 0.0;
};

/** Result of an ordinary least-squares line fit y = slope * x + intercept. */
struct LineFit
{
    double slope = 0.0;
    double intercept = 0.0;
    /** Coefficient of determination in [0,1]; 1 for a perfect fit. */
    double r2 = 0.0;

    /** Predicted y at @p x. */
    double at(double x) const { return slope * x + intercept; }
};

/**
 * Ordinary least squares over paired samples.
 *
 * @param xs Sample abscissae.
 * @param ys Sample ordinates; must be the same length as @p xs.
 * @return The fitted line; a degenerate input (fewer than two points or
 *         zero x-variance) yields a horizontal line through the mean.
 */
LineFit fitLine(const std::vector<double> &xs, const std::vector<double> &ys);

/** Ratio helper that maps 0/0 to 0 instead of NaN. */
inline double
safeRatio(double num, double den)
{
    return den == 0.0 ? 0.0 : num / den;
}

/**
 * Percentile of an ascending-sorted sample set, linearly interpolated
 * between adjacent order statistics (the "exclusive of neither end"
 * definition: p=0 is the minimum, p=100 the maximum).
 *
 * @param sorted Samples in ascending order.
 * @param pct Percentile in [0, 100] (clamped).
 * @return The interpolated percentile; 0 when @p sorted is empty.
 */
double percentileOfSorted(const std::vector<double> &sorted, double pct);

/** The three percentiles the reports quote. */
struct Quantiles
{
    double p50 = 0.0;
    double p90 = 0.0;
    double p99 = 0.0;
};

/** p50/p90/p99 of @p samples (sorts a copy; empty input yields zeros). */
Quantiles quantilesOf(std::vector<double> samples);

/**
 * Percentile estimate from fixed-bucket histogram counts, interpolating
 * linearly within the containing bucket (Prometheus histogram_quantile
 * semantics, with the first bucket anchored at 0).
 *
 * @param upperBounds Finite bucket upper bounds, ascending.
 * @param bucketCounts Per-bucket (non-cumulative) counts; one entry per
 *        bound plus a final +Inf overflow bucket.
 * @param pct Percentile in [0, 100] (clamped).
 * @return The estimate; 0 when every bucket is empty. A percentile that
 *         lands in the overflow bucket reports the largest finite bound.
 */
double histogramQuantile(const std::vector<double> &upperBounds,
                         const std::vector<uint64_t> &bucketCounts,
                         double pct);

} // namespace autofsm

#endif // AUTOFSM_SUPPORT_STATS_HH
