/**
 * @file
 * Running statistics and least-squares fitting.
 *
 * The area model of Section 7.4 fits a straight line through
 * (state-count, area) samples; RunningStats backs the various rate
 * counters reported by the simulators.
 */

#ifndef AUTOFSM_SUPPORT_STATS_HH
#define AUTOFSM_SUPPORT_STATS_HH

#include <cstdint>
#include <vector>

namespace autofsm
{

/** Streaming mean/variance/min/max accumulator (Welford's algorithm). */
class RunningStats
{
  public:
    /** Add one observation. */
    void add(double x);

    /** Number of observations added. */
    uint64_t count() const { return count_; }

    /** Arithmetic mean; 0 when empty. */
    double mean() const { return count_ ? mean_ : 0.0; }

    /** Population variance; 0 with fewer than two observations. */
    double variance() const;

    /** Smallest observation; 0 when empty. */
    double min() const { return count_ ? min_ : 0.0; }

    /** Largest observation; 0 when empty. */
    double max() const { return count_ ? max_ : 0.0; }

    /** Sum of all observations. */
    double sum() const { return sum_; }

  private:
    uint64_t count_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
    double sum_ = 0.0;
};

/** Result of an ordinary least-squares line fit y = slope * x + intercept. */
struct LineFit
{
    double slope = 0.0;
    double intercept = 0.0;
    /** Coefficient of determination in [0,1]; 1 for a perfect fit. */
    double r2 = 0.0;

    /** Predicted y at @p x. */
    double at(double x) const { return slope * x + intercept; }
};

/**
 * Ordinary least squares over paired samples.
 *
 * @param xs Sample abscissae.
 * @param ys Sample ordinates; must be the same length as @p xs.
 * @return The fitted line; a degenerate input (fewer than two points or
 *         zero x-variance) yields a horizontal line through the mean.
 */
LineFit fitLine(const std::vector<double> &xs, const std::vector<double> &ys);

/** Ratio helper that maps 0/0 to 0 instead of NaN. */
inline double
safeRatio(double num, double den)
{
    return den == 0.0 ? 0.0 : num / den;
}

} // namespace autofsm

#endif // AUTOFSM_SUPPORT_STATS_HH
