/**
 * @file
 * A small fixed-size thread pool and a blocking parallel-for built on it.
 *
 * The batch design pipeline (src/flow) fans per-branch FSM design work out
 * across cores with these utilities. Tasks are coarse (a whole design-flow
 * run each), so the implementation favors simplicity over lock-free
 * cleverness: one mutex-protected queue, dynamic index claiming for load
 * balance, and deterministic exception reporting (the lowest-index failure
 * wins, independent of thread scheduling).
 */

#ifndef AUTOFSM_SUPPORT_THREAD_POOL_HH
#define AUTOFSM_SUPPORT_THREAD_POOL_HH

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "obs/metrics.hh"
#include "support/failpoint.hh"

namespace autofsm
{

/**
 * Fixed-size worker pool; jobs are arbitrary void() callables.
 *
 * Jobs are expected to handle their own exceptions (parallelForOn does;
 * see its lowest-index-wins contract). A job that *does* throw is
 * contained rather than terminating the process: the worker swallows
 * the exception, counts it in `autofsm_pool_task_exceptions_total`, and
 * keeps serving the queue. The error itself is lost, which is why
 * higher layers must not rely on this backstop.
 */
class ThreadPool
{
  public:
    /** Hardware concurrency with a floor of 1 (it may report 0). */
    static unsigned
    defaultThreadCount()
    {
        const unsigned hw = std::thread::hardware_concurrency();
        return hw ? hw : 1;
    }

    /** @param threads Worker count; 0 means defaultThreadCount(). */
    explicit ThreadPool(unsigned threads = 0)
    {
        const unsigned count = threads ? threads : defaultThreadCount();
        poolMetrics().threads.set(static_cast<double>(count));
        workers_.reserve(count);
        for (unsigned i = 0; i < count; ++i)
            workers_.emplace_back([this] { workerLoop(); });
    }

    ~ThreadPool()
    {
        {
            std::lock_guard<std::mutex> lock(mutex_);
            stopping_ = true;
        }
        wake_.notify_all();
        for (auto &worker : workers_)
            worker.join();
    }

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    unsigned threadCount() const
    {
        return static_cast<unsigned>(workers_.size());
    }

    /** Enqueue @p job; it runs on some worker, in FIFO order. */
    void
    submit(std::function<void()> job)
    {
        Job entry;
        entry.fn = std::move(job);
#ifndef AUTOFSM_NO_TELEMETRY
        if (obs::globalMetrics().enabled())
            entry.enqueued = std::chrono::steady_clock::now();
#endif
        {
            std::lock_guard<std::mutex> lock(mutex_);
            queue_.push_back(std::move(entry));
        }
        wake_.notify_one();
    }

  private:
    struct Job
    {
        std::function<void()> fn;
        /** Submit time; drives the queue-wait histogram. */
        std::chrono::steady_clock::time_point enqueued{};
    };

    /**
     * Pool-wide telemetry. Task wait/run are histograms, so utilization
     * over a window is run-sum / (threads gauge x wall-clock).
     */
    struct PoolMetrics
    {
        obs::Gauge threads;
        obs::Counter tasks;
        obs::Counter taskExceptions;
        obs::Histogram wait;
        obs::Histogram run;
    };

    static PoolMetrics &
    poolMetrics()
    {
        static PoolMetrics metrics = [] {
            obs::MetricsRegistry &registry = obs::globalMetrics();
            PoolMetrics m;
            m.threads = registry.gauge(
                "autofsm_pool_threads",
                "Worker count of the most recently constructed pool.");
            m.tasks = registry.counter(
                "autofsm_pool_tasks_total",
                "Jobs executed by thread-pool workers.");
            m.taskExceptions = registry.counter(
                "autofsm_pool_task_exceptions_total",
                "Jobs that threw out of the worker (contract breach; "
                "the exception is swallowed).");
            m.wait = registry.histogram(
                "autofsm_pool_task_wait_millis",
                "Queue wait between submit and dequeue.",
                obs::defaultLatencyBucketsMillis());
            m.run = registry.histogram(
                "autofsm_pool_task_run_millis",
                "Job execution time on a worker.",
                obs::defaultLatencyBucketsMillis());
            return m;
        }();
        return metrics;
    }

    /** Run a job, containing (and counting) any escaped exception. */
    static void
    runContained(Job &job)
    {
        try {
            job.fn();
        } catch (...) {
            poolMetrics().taskExceptions.inc();
        }
    }

    void
    workerLoop()
    {
        for (;;) {
            Job job;
            {
                std::unique_lock<std::mutex> lock(mutex_);
                wake_.wait(lock,
                           [this] { return stopping_ || !queue_.empty(); });
                if (queue_.empty())
                    return; // stopping and drained
                job = std::move(queue_.front());
                queue_.pop_front();
            }
#ifndef AUTOFSM_NO_TELEMETRY
            // Only jobs stamped at submit (registry enabled then) report;
            // a zero stamp means telemetry was off when they were queued.
            if (obs::globalMetrics().enabled() &&
                job.enqueued.time_since_epoch().count() != 0) {
                const auto start = std::chrono::steady_clock::now();
                poolMetrics().wait.observe(
                    std::chrono::duration<double, std::milli>(
                        start - job.enqueued)
                        .count());
                runContained(job);
                poolMetrics().run.observe(
                    std::chrono::duration<double, std::milli>(
                        std::chrono::steady_clock::now() - start)
                        .count());
                poolMetrics().tasks.inc();
                continue;
            }
#endif
            runContained(job);
        }
    }

    std::mutex mutex_;
    std::condition_variable wake_;
    std::deque<Job> queue_;
    bool stopping_ = false;
    std::vector<std::thread> workers_;
};

/**
 * Run fn(0) ... fn(count-1) on @p pool and block until all are done.
 *
 * Indices are claimed dynamically, so uneven per-item cost balances
 * across workers. Callers must make fn(i) touch only per-index state (or
 * synchronize themselves). Every index runs even if an earlier one threw;
 * afterwards the exception of the *lowest* failing index is rethrown —
 * deterministic regardless of interleaving.
 */
template <typename Fn>
void
parallelForOn(ThreadPool &pool, size_t count, const Fn &fn)
{
    if (count == 0)
        return;
    if (pool.threadCount() <= 1 || count == 1) {
        for (size_t i = 0; i < count; ++i)
            fn(i);
        return;
    }

    struct Shared
    {
        std::atomic<size_t> next{0};
        std::mutex mutex;
        std::condition_variable done;
        size_t running = 0;
        size_t firstBadIndex = 0;
        std::exception_ptr error;
    } shared;

    const size_t jobs =
        std::min<size_t>(pool.threadCount(), count);
    {
        std::lock_guard<std::mutex> lock(shared.mutex);
        shared.running = jobs;
    }

    auto body = [count, &fn, &shared] {
        size_t i;
        while ((i = shared.next.fetch_add(1)) < count) {
            try {
                AUTOFSM_FAILPOINT("pool.task");
                fn(i);
            } catch (...) {
                std::lock_guard<std::mutex> lock(shared.mutex);
                if (!shared.error || i < shared.firstBadIndex) {
                    shared.error = std::current_exception();
                    shared.firstBadIndex = i;
                }
            }
        }
        // Notify while holding the mutex: the waiter destroys `shared`
        // as soon as it observes running == 0, so an unlocked notify
        // could touch a dead condition variable.
        std::lock_guard<std::mutex> lock(shared.mutex);
        if (--shared.running == 0)
            shared.done.notify_all();
    };

    for (size_t j = 0; j < jobs; ++j)
        pool.submit(body);

    std::unique_lock<std::mutex> lock(shared.mutex);
    shared.done.wait(lock, [&shared] { return shared.running == 0; });
    if (shared.error)
        std::rethrow_exception(shared.error);
}

/**
 * Convenience parallel-for with a transient pool.
 *
 * @param threads Worker count; 0 means defaultThreadCount(). With one
 *        worker (or one item) the calls run inline on this thread.
 */
template <typename Fn>
void
parallelFor(size_t count, const Fn &fn, unsigned threads = 0)
{
    const unsigned resolved =
        threads ? threads : ThreadPool::defaultThreadCount();
    if (resolved <= 1 || count <= 1) {
        for (size_t i = 0; i < count; ++i)
            fn(i);
        return;
    }
    ThreadPool pool(resolved);
    parallelForOn(pool, count, fn);
}

} // namespace autofsm

#endif // AUTOFSM_SUPPORT_THREAD_POOL_HH
