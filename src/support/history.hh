/**
 * @file
 * Shift-register history used by predictors and the Markov modeler.
 */

#ifndef AUTOFSM_SUPPORT_HISTORY_HH
#define AUTOFSM_SUPPORT_HISTORY_HH

#include <cassert>
#include <cstdint>

#include "support/bits.hh"

namespace autofsm
{

/**
 * Fixed-width binary shift register.
 *
 * Bit 0 holds the most recent outcome; bit (width-1) the oldest retained
 * one. `value()` therefore reads, MSB-first, as "oldest ... newest", which
 * matches the left-to-right pattern notation used in the paper (a pattern
 * "10" means the older outcome was 1 and the newer 0).
 */
class HistoryRegister
{
  public:
    explicit HistoryRegister(int width)
        : width_(width), bits_(0), seen_(0)
    {
        assert(width >= 1 && width <= MaxBits);
    }

    /** Shift in a new outcome (0 or 1) as the most recent bit. */
    void
    push(int outcome)
    {
        assert(outcome == 0 || outcome == 1);
        bits_ = ((bits_ << 1) | static_cast<uint32_t>(outcome)) &
            lowMask(width_);
        if (seen_ < width_)
            ++seen_;
    }

    /** Packed history; bit 0 is the most recent outcome. */
    uint32_t value() const { return bits_; }

    /** Configured width in bits. */
    int width() const { return width_; }

    /** True once at least `width` outcomes have been pushed. */
    bool warm() const { return seen_ >= width_; }

    /** Clear contents and the warm-up counter. */
    void
    reset()
    {
        bits_ = 0;
        seen_ = 0;
    }

  private:
    int width_;
    uint32_t bits_;
    int seen_;
};

} // namespace autofsm

#endif // AUTOFSM_SUPPORT_HISTORY_HH
