#include "support/stats.hh"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace autofsm
{

void
RunningStats::add(double x)
{
    if (count_ == 0) {
        min_ = x;
        max_ = x;
    } else {
        min_ = std::min(min_, x);
        max_ = std::max(max_, x);
    }
    ++count_;
    sum_ += x;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (x - mean_);
}

double
RunningStats::variance() const
{
    if (count_ < 2)
        return 0.0;
    return m2_ / static_cast<double>(count_);
}

LineFit
fitLine(const std::vector<double> &xs, const std::vector<double> &ys)
{
    assert(xs.size() == ys.size());
    LineFit fit;
    const size_t n = xs.size();
    if (n == 0)
        return fit;

    double sx = 0.0, sy = 0.0;
    for (size_t i = 0; i < n; ++i) {
        sx += xs[i];
        sy += ys[i];
    }
    const double mx = sx / static_cast<double>(n);
    const double my = sy / static_cast<double>(n);

    double sxx = 0.0, sxy = 0.0, syy = 0.0;
    for (size_t i = 0; i < n; ++i) {
        const double dx = xs[i] - mx;
        const double dy = ys[i] - my;
        sxx += dx * dx;
        sxy += dx * dy;
        syy += dy * dy;
    }

    if (n < 2 || sxx == 0.0) {
        fit.intercept = my;
        return fit;
    }

    fit.slope = sxy / sxx;
    fit.intercept = my - fit.slope * mx;
    if (syy > 0.0) {
        const double residual = syy - fit.slope * sxy;
        fit.r2 = 1.0 - residual / syy;
        fit.r2 = std::max(0.0, std::min(1.0, fit.r2));
    } else {
        fit.r2 = 1.0;
    }
    return fit;
}

double
percentileOfSorted(const std::vector<double> &sorted, double pct)
{
    if (sorted.empty())
        return 0.0;
    const double clamped = std::max(0.0, std::min(100.0, pct));
    const double rank =
        clamped / 100.0 * static_cast<double>(sorted.size() - 1);
    const size_t lo = static_cast<size_t>(rank);
    const size_t hi = std::min(lo + 1, sorted.size() - 1);
    const double frac = rank - static_cast<double>(lo);
    return sorted[lo] + (sorted[hi] - sorted[lo]) * frac;
}

Quantiles
quantilesOf(std::vector<double> samples)
{
    std::sort(samples.begin(), samples.end());
    Quantiles q;
    q.p50 = percentileOfSorted(samples, 50.0);
    q.p90 = percentileOfSorted(samples, 90.0);
    q.p99 = percentileOfSorted(samples, 99.0);
    return q;
}

double
histogramQuantile(const std::vector<double> &upperBounds,
                  const std::vector<uint64_t> &bucketCounts, double pct)
{
    assert(bucketCounts.size() == upperBounds.size() + 1);
    uint64_t total = 0;
    for (const uint64_t count : bucketCounts)
        total += count;
    if (total == 0)
        return 0.0;

    const double clamped = std::max(0.0, std::min(100.0, pct));
    const double rank = clamped / 100.0 * static_cast<double>(total);
    uint64_t cumulative = 0;
    for (size_t b = 0; b < bucketCounts.size(); ++b) {
        const uint64_t in_bucket = bucketCounts[b];
        if (rank > static_cast<double>(cumulative + in_bucket)) {
            cumulative += in_bucket;
            continue;
        }
        if (b >= upperBounds.size()) {
            // Overflow bucket has no upper edge; report the last finite
            // bound (or 0 for a bounds-less histogram).
            return upperBounds.empty() ? 0.0 : upperBounds.back();
        }
        const double lower = b == 0 ? 0.0 : upperBounds[b - 1];
        const double upper = upperBounds[b];
        if (in_bucket == 0)
            return upper;
        const double within =
            (rank - static_cast<double>(cumulative)) /
            static_cast<double>(in_bucket);
        return lower + (upper - lower) * std::min(1.0, within);
    }
    return upperBounds.empty() ? 0.0 : upperBounds.back();
}

} // namespace autofsm
