#include "support/stats.hh"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace autofsm
{

void
RunningStats::add(double x)
{
    if (count_ == 0) {
        min_ = x;
        max_ = x;
    } else {
        min_ = std::min(min_, x);
        max_ = std::max(max_, x);
    }
    ++count_;
    sum_ += x;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (x - mean_);
}

double
RunningStats::variance() const
{
    if (count_ < 2)
        return 0.0;
    return m2_ / static_cast<double>(count_);
}

LineFit
fitLine(const std::vector<double> &xs, const std::vector<double> &ys)
{
    assert(xs.size() == ys.size());
    LineFit fit;
    const size_t n = xs.size();
    if (n == 0)
        return fit;

    double sx = 0.0, sy = 0.0;
    for (size_t i = 0; i < n; ++i) {
        sx += xs[i];
        sy += ys[i];
    }
    const double mx = sx / static_cast<double>(n);
    const double my = sy / static_cast<double>(n);

    double sxx = 0.0, sxy = 0.0, syy = 0.0;
    for (size_t i = 0; i < n; ++i) {
        const double dx = xs[i] - mx;
        const double dy = ys[i] - my;
        sxx += dx * dx;
        sxy += dx * dy;
        syy += dy * dy;
    }

    if (n < 2 || sxx == 0.0) {
        fit.intercept = my;
        return fit;
    }

    fit.slope = sxy / sxx;
    fit.intercept = my - fit.slope * mx;
    if (syy > 0.0) {
        const double residual = syy - fit.slope * sxy;
        fit.r2 = 1.0 - residual / syy;
        fit.r2 = std::max(0.0, std::min(1.0, fit.r2));
    } else {
        fit.r2 = 1.0;
    }
    return fit;
}

} // namespace autofsm
