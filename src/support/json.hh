/**
 * @file
 * A minimal streaming JSON writer.
 *
 * The reporting layer (sim/report) and the design-flow traces emit
 * machine-diffable JSON with this; no external dependency, deterministic
 * formatting (fixed "%.12g" doubles, no locale influence, no insignificant
 * whitespace). The writer tracks nesting and inserts commas itself; the
 * caller is responsible for well-formed begin/end pairing.
 */

#ifndef AUTOFSM_SUPPORT_JSON_HH
#define AUTOFSM_SUPPORT_JSON_HH

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

namespace autofsm
{

/** Escape @p text for inclusion inside a JSON string literal. */
inline std::string
jsonEscape(std::string_view text)
{
    std::string out;
    out.reserve(text.size());
    for (const char c : text) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\b': out += "\\b"; break;
          case '\f': out += "\\f"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned>(
                                  static_cast<unsigned char>(c)));
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

/** Comma-managing JSON emitter over an ostream. */
class JsonWriter
{
  public:
    explicit JsonWriter(std::ostream &out) : out_(out) {}

    JsonWriter &
    beginObject()
    {
        separate();
        out_ << '{';
        nesting_.push_back(false);
        return *this;
    }

    JsonWriter &
    endObject()
    {
        nesting_.pop_back();
        out_ << '}';
        return *this;
    }

    JsonWriter &
    beginArray()
    {
        separate();
        out_ << '[';
        nesting_.push_back(false);
        return *this;
    }

    JsonWriter &
    endArray()
    {
        nesting_.pop_back();
        out_ << ']';
        return *this;
    }

    /** Emit an object key; must be followed by exactly one value. */
    JsonWriter &
    key(std::string_view name)
    {
        separate();
        out_ << '"' << jsonEscape(name) << "\":";
        afterKey_ = true;
        return *this;
    }

    JsonWriter &
    value(std::string_view text)
    {
        separate();
        out_ << '"' << jsonEscape(text) << '"';
        return *this;
    }

    JsonWriter &value(const char *text)
    {
        return value(std::string_view(text));
    }

    JsonWriter &value(const std::string &text)
    {
        return value(std::string_view(text));
    }

    JsonWriter &
    value(double number)
    {
        separate();
        if (std::isfinite(number)) {
            char buf[32];
            std::snprintf(buf, sizeof(buf), "%.12g", number);
            out_ << buf;
        } else {
            out_ << "null"; // JSON has no NaN/Inf
        }
        return *this;
    }

    JsonWriter &
    value(int64_t number)
    {
        separate();
        out_ << number;
        return *this;
    }

    JsonWriter &
    value(uint64_t number)
    {
        separate();
        out_ << number;
        return *this;
    }

    JsonWriter &value(int number) { return value(int64_t{number}); }

    JsonWriter &value(unsigned number) { return value(uint64_t{number}); }

    JsonWriter &
    value(bool flag)
    {
        separate();
        out_ << (flag ? "true" : "false");
        return *this;
    }

  private:
    /** Insert the comma owed by the previous sibling, if any. */
    void
    separate()
    {
        if (afterKey_) {
            afterKey_ = false;
            return; // the key already separated us
        }
        if (!nesting_.empty()) {
            if (nesting_.back())
                out_ << ',';
            nesting_.back() = true;
        }
    }

    std::ostream &out_;
    std::vector<bool> nesting_;
    bool afterKey_ = false;
};

} // namespace autofsm

#endif // AUTOFSM_SUPPORT_JSON_HH
