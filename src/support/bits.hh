/**
 * @file
 * Small bit-manipulation helpers shared across the library.
 *
 * Histories, logic-minimization cubes and state encodings all manipulate
 * packed bit vectors of at most 32 bits; these helpers keep that code
 * readable and bounds-checked in one place.
 */

#ifndef AUTOFSM_SUPPORT_BITS_HH
#define AUTOFSM_SUPPORT_BITS_HH

#include <cassert>
#include <cstdint>
#include <string>

namespace autofsm
{

/** Maximum history/variable width supported by the packed representations. */
inline constexpr int MaxBits = 32;

/** All-ones mask of the low @p n bits (n in [0, 32]). */
inline constexpr uint32_t
lowMask(int n)
{
    return n >= MaxBits ? 0xffffffffU : ((1U << n) - 1U);
}

/** Extract bit @p pos (0 = least significant) of @p value. */
inline constexpr int
bitOf(uint32_t value, int pos)
{
    return static_cast<int>((value >> pos) & 1U);
}

/** Number of set bits. */
inline constexpr int
popcount(uint32_t value)
{
    return __builtin_popcount(value);
}

/** Ceiling of log2; bits needed to index @p n distinct values (n >= 1). */
inline constexpr int
ceilLog2(uint32_t n)
{
    int bits = 0;
    uint32_t cap = 1;
    while (cap < n) {
        cap <<= 1;
        ++bits;
    }
    return bits;
}

/**
 * Render the low @p width bits of @p value as a binary string, most
 * significant bit first. Used for history patterns in logs and DOT output.
 */
inline std::string
toBinary(uint32_t value, int width)
{
    assert(width >= 0 && width <= MaxBits);
    std::string out(static_cast<size_t>(width), '0');
    for (int i = 0; i < width; ++i) {
        if (bitOf(value, width - 1 - i))
            out[static_cast<size_t>(i)] = '1';
    }
    return out;
}

/**
 * Parse a binary pattern string (MSB first) of '0'/'1' into a value.
 * Characters other than '0'/'1' are rejected by assertion.
 */
inline uint32_t
fromBinary(const std::string &text)
{
    assert(text.size() <= static_cast<size_t>(MaxBits));
    uint32_t value = 0;
    for (char c : text) {
        assert(c == '0' || c == '1');
        value = (value << 1) | static_cast<uint32_t>(c == '1');
    }
    return value;
}

} // namespace autofsm

#endif // AUTOFSM_SUPPORT_BITS_HH
