#include "support/crc32.hh"

#include <array>

namespace autofsm
{

namespace
{

/** The reflected IEEE polynomial's byte-at-a-time lookup table. */
const std::array<uint32_t, 256> &
crcTable()
{
    static const std::array<uint32_t, 256> table = [] {
        std::array<uint32_t, 256> t{};
        for (uint32_t i = 0; i < 256; ++i) {
            uint32_t crc = i;
            for (int bit = 0; bit < 8; ++bit)
                crc = (crc >> 1) ^ ((crc & 1) ? 0xedb88320u : 0u);
            t[i] = crc;
        }
        return t;
    }();
    return table;
}

} // anonymous namespace

uint32_t
crc32Ieee(std::string_view bytes)
{
    return crc32IeeeUpdate(0, bytes);
}

uint32_t
crc32IeeeUpdate(uint32_t seed, std::string_view bytes)
{
    const auto &table = crcTable();
    uint32_t crc = seed ^ 0xffffffffu;
    for (const char c : bytes) {
        crc = (crc >> 8) ^
            table[(crc ^ static_cast<unsigned char>(c)) & 0xff];
    }
    return crc ^ 0xffffffffu;
}

} // namespace autofsm
