#include "support/json_parse.hh"

#include <cmath>
#include <cstdlib>
#include <stdexcept>

namespace autofsm
{

namespace
{

[[noreturn]] void
fail(const std::string &what, size_t offset)
{
    throw std::invalid_argument("json: " + what + " at offset " +
                                std::to_string(offset));
}

} // anonymous namespace

/** The parser proper; friend of JsonValue so it can fill the variant. */
class JsonParser
{
  public:
    explicit JsonParser(std::string_view text) : text_(text) {}

    JsonValue
    run()
    {
        JsonValue value = parseValue(0);
        skipWhitespace();
        if (pos_ != text_.size())
            fail("trailing garbage after document", pos_);
        return value;
    }

  private:
    static constexpr int kMaxDepth = 64;

    void
    skipWhitespace()
    {
        while (pos_ < text_.size()) {
            const char c = text_[pos_];
            if (c != ' ' && c != '\t' && c != '\n' && c != '\r')
                break;
            ++pos_;
        }
    }

    char
    peek()
    {
        if (pos_ >= text_.size())
            fail("unexpected end of input", pos_);
        return text_[pos_];
    }

    void
    expect(char c)
    {
        if (pos_ >= text_.size() || text_[pos_] != c)
            fail(std::string("expected '") + c + "'", pos_);
        ++pos_;
    }

    bool
    consumeLiteral(std::string_view literal)
    {
        if (text_.substr(pos_, literal.size()) != literal)
            return false;
        pos_ += literal.size();
        return true;
    }

    JsonValue
    parseValue(int depth)
    {
        if (depth > kMaxDepth)
            fail("nesting too deep", pos_);
        skipWhitespace();
        const char c = peek();
        switch (c) {
          case '{': return parseObject(depth);
          case '[': return parseArray(depth);
          case '"': return parseString();
          case 't':
          case 'f': return parseBool();
          case 'n': return parseNull();
          default: return parseNumber();
        }
    }

    JsonValue
    parseNull()
    {
        if (!consumeLiteral("null"))
            fail("invalid literal", pos_);
        return JsonValue();
    }

    JsonValue
    parseBool()
    {
        JsonValue value;
        value.kind_ = JsonValue::Kind::Bool;
        if (consumeLiteral("true")) {
            value.bool_ = true;
        } else if (consumeLiteral("false")) {
            value.bool_ = false;
        } else {
            fail("invalid literal", pos_);
        }
        return value;
    }

    JsonValue
    parseNumber()
    {
        const size_t start = pos_;
        if (pos_ < text_.size() && text_[pos_] == '-')
            ++pos_;
        if (pos_ >= text_.size() ||
            !(text_[pos_] >= '0' && text_[pos_] <= '9')) {
            fail("invalid number", start);
        }
        // Leading zeros are invalid JSON ("01"), a lone zero is fine.
        if (text_[pos_] == '0' && pos_ + 1 < text_.size() &&
            text_[pos_ + 1] >= '0' && text_[pos_ + 1] <= '9') {
            fail("leading zero in number", start);
        }
        while (pos_ < text_.size() && text_[pos_] >= '0' &&
               text_[pos_] <= '9') {
            ++pos_;
        }
        if (pos_ < text_.size() && text_[pos_] == '.') {
            ++pos_;
            if (pos_ >= text_.size() ||
                !(text_[pos_] >= '0' && text_[pos_] <= '9'))
                fail("digit required after decimal point", pos_);
            while (pos_ < text_.size() && text_[pos_] >= '0' &&
                   text_[pos_] <= '9') {
                ++pos_;
            }
        }
        if (pos_ < text_.size() &&
            (text_[pos_] == 'e' || text_[pos_] == 'E')) {
            ++pos_;
            if (pos_ < text_.size() &&
                (text_[pos_] == '+' || text_[pos_] == '-'))
                ++pos_;
            if (pos_ >= text_.size() ||
                !(text_[pos_] >= '0' && text_[pos_] <= '9'))
                fail("digit required in exponent", pos_);
            while (pos_ < text_.size() && text_[pos_] >= '0' &&
                   text_[pos_] <= '9') {
                ++pos_;
            }
        }
        const std::string token(text_.substr(start, pos_ - start));
        JsonValue value;
        value.kind_ = JsonValue::Kind::Number;
        value.number_ = std::strtod(token.c_str(), nullptr);
        if (!std::isfinite(value.number_))
            fail("number out of double range", start);
        return value;
    }

    /** Append @p code point to @p out as UTF-8. */
    static void
    appendUtf8(std::string &out, uint32_t code)
    {
        if (code < 0x80) {
            out += static_cast<char>(code);
        } else if (code < 0x800) {
            out += static_cast<char>(0xc0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3f));
        } else if (code < 0x10000) {
            out += static_cast<char>(0xe0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3f));
            out += static_cast<char>(0x80 | (code & 0x3f));
        } else {
            out += static_cast<char>(0xf0 | (code >> 18));
            out += static_cast<char>(0x80 | ((code >> 12) & 0x3f));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3f));
            out += static_cast<char>(0x80 | (code & 0x3f));
        }
    }

    uint32_t
    parseHex4()
    {
        uint32_t code = 0;
        for (int i = 0; i < 4; ++i) {
            if (pos_ >= text_.size())
                fail("truncated \\u escape", pos_);
            const char c = text_[pos_++];
            code <<= 4;
            if (c >= '0' && c <= '9')
                code |= static_cast<uint32_t>(c - '0');
            else if (c >= 'a' && c <= 'f')
                code |= static_cast<uint32_t>(c - 'a' + 10);
            else if (c >= 'A' && c <= 'F')
                code |= static_cast<uint32_t>(c - 'A' + 10);
            else
                fail("invalid hex digit in \\u escape", pos_ - 1);
        }
        return code;
    }

    std::string
    parseStringBody()
    {
        expect('"');
        std::string out;
        for (;;) {
            if (pos_ >= text_.size())
                fail("unterminated string", pos_);
            const char c = text_[pos_++];
            if (c == '"')
                return out;
            if (static_cast<unsigned char>(c) < 0x20)
                fail("raw control character in string", pos_ - 1);
            if (c != '\\') {
                out += c;
                continue;
            }
            if (pos_ >= text_.size())
                fail("truncated escape", pos_);
            const char esc = text_[pos_++];
            switch (esc) {
              case '"': out += '"'; break;
              case '\\': out += '\\'; break;
              case '/': out += '/'; break;
              case 'b': out += '\b'; break;
              case 'f': out += '\f'; break;
              case 'n': out += '\n'; break;
              case 'r': out += '\r'; break;
              case 't': out += '\t'; break;
              case 'u': {
                uint32_t code = parseHex4();
                if (code >= 0xd800 && code <= 0xdbff) {
                    // High surrogate: a low surrogate must follow.
                    if (!consumeLiteral("\\u"))
                        fail("unpaired surrogate", pos_);
                    const uint32_t low = parseHex4();
                    if (low < 0xdc00 || low > 0xdfff)
                        fail("invalid low surrogate", pos_);
                    code = 0x10000 + ((code - 0xd800) << 10) +
                        (low - 0xdc00);
                } else if (code >= 0xdc00 && code <= 0xdfff) {
                    fail("unpaired surrogate", pos_);
                }
                appendUtf8(out, code);
                break;
              }
              default: fail("invalid escape", pos_ - 1);
            }
        }
    }

    JsonValue
    parseString()
    {
        JsonValue value;
        value.kind_ = JsonValue::Kind::String;
        value.string_ = parseStringBody();
        return value;
    }

    JsonValue
    parseArray(int depth)
    {
        expect('[');
        JsonValue value;
        value.kind_ = JsonValue::Kind::Array;
        skipWhitespace();
        if (peek() == ']') {
            ++pos_;
            return value;
        }
        for (;;) {
            value.items_.push_back(parseValue(depth + 1));
            skipWhitespace();
            const char c = peek();
            if (c == ',') {
                ++pos_;
                continue;
            }
            if (c == ']') {
                ++pos_;
                return value;
            }
            fail("expected ',' or ']'", pos_);
        }
    }

    JsonValue
    parseObject(int depth)
    {
        expect('{');
        JsonValue value;
        value.kind_ = JsonValue::Kind::Object;
        skipWhitespace();
        if (peek() == '}') {
            ++pos_;
            return value;
        }
        for (;;) {
            skipWhitespace();
            std::string key = parseStringBody();
            for (const auto &member : value.members_) {
                if (member.first == key)
                    fail("duplicate object key '" + key + "'", pos_);
            }
            skipWhitespace();
            expect(':');
            value.members_.emplace_back(std::move(key),
                                        parseValue(depth + 1));
            skipWhitespace();
            const char c = peek();
            if (c == ',') {
                ++pos_;
                continue;
            }
            if (c == '}') {
                ++pos_;
                return value;
            }
            fail("expected ',' or '}'", pos_);
        }
    }

    std::string_view text_;
    size_t pos_ = 0;
};

JsonValue
JsonValue::parse(std::string_view text)
{
    return JsonParser(text).run();
}

namespace
{

[[noreturn]] void
kindMismatch(const char *wanted, JsonValue::Kind got)
{
    throw std::invalid_argument(std::string("json: expected ") + wanted +
                                ", got " + jsonKindName(got));
}

} // anonymous namespace

bool
JsonValue::asBool() const
{
    if (kind_ != Kind::Bool)
        kindMismatch("bool", kind_);
    return bool_;
}

double
JsonValue::asNumber() const
{
    if (kind_ != Kind::Number)
        kindMismatch("number", kind_);
    return number_;
}

int64_t
JsonValue::asInt() const
{
    const double value = asNumber();
    if (value != std::floor(value) || value < -9.007199254740992e15 ||
        value > 9.007199254740992e15) {
        throw std::invalid_argument(
            "json: number is not an exactly representable integer");
    }
    return static_cast<int64_t>(value);
}

uint64_t
JsonValue::asUint() const
{
    const int64_t value = asInt();
    if (value < 0)
        throw std::invalid_argument("json: negative where unsigned needed");
    return static_cast<uint64_t>(value);
}

const std::string &
JsonValue::asString() const
{
    if (kind_ != Kind::String)
        kindMismatch("string", kind_);
    return string_;
}

const std::vector<JsonValue> &
JsonValue::items() const
{
    if (kind_ != Kind::Array)
        kindMismatch("array", kind_);
    return items_;
}

const std::vector<JsonValue::Member> &
JsonValue::members() const
{
    if (kind_ != Kind::Object)
        kindMismatch("object", kind_);
    return members_;
}

const JsonValue *
JsonValue::find(std::string_view key) const
{
    for (const auto &member : members()) {
        if (member.first == key)
            return &member.second;
    }
    return nullptr;
}

const char *
jsonKindName(JsonValue::Kind kind)
{
    switch (kind) {
      case JsonValue::Kind::Null: return "null";
      case JsonValue::Kind::Bool: return "bool";
      case JsonValue::Kind::Number: return "number";
      case JsonValue::Kind::String: return "string";
      case JsonValue::Kind::Array: return "array";
      case JsonValue::Kind::Object: return "object";
    }
    return "?";
}

} // namespace autofsm
