/**
 * @file
 * IEEE CRC32 (reflected polynomial 0xEDB88320).
 *
 * One checksum for every byte-level integrity check in the repo: the
 * serve protocol's frame payloads and the persistent artifact store's
 * header and section checks share this implementation, so a value
 * computed by one layer verifies in the other. Check value:
 * crc32Ieee("123456789") == 0xCBF43926.
 */

#ifndef AUTOFSM_SUPPORT_CRC32_HH
#define AUTOFSM_SUPPORT_CRC32_HH

#include <cstdint>
#include <string_view>

namespace autofsm
{

/** CRC32 of @p bytes (IEEE, reflected, init/xorout 0xFFFFFFFF). */
uint32_t crc32Ieee(std::string_view bytes);

/** Continue a running CRC: pass the previous return value as @p seed. */
uint32_t crc32IeeeUpdate(uint32_t seed, std::string_view bytes);

} // namespace autofsm

#endif // AUTOFSM_SUPPORT_CRC32_HH
