/**
 * @file
 * A strict recursive-descent JSON parser.
 *
 * Counterpart of the JsonWriter in support/json.hh: the serve protocol,
 * the DesignRequest/DesignResponse API and the bench request-file replay
 * all deserialize through this. Deliberately strict — RFC 8259 only, no
 * comments, no trailing commas, full-input consumption — because every
 * payload it sees crosses a process boundary and the PR 4 trace_io
 * hardening set the precedent that boundary inputs are validated, not
 * trusted.
 *
 * Numbers are held as doubles (like JavaScript); asInt()/asUint() check
 * that the value is integral and in range, so protocol code gets typed
 * integers without silent truncation.
 */

#ifndef AUTOFSM_SUPPORT_JSON_PARSE_HH
#define AUTOFSM_SUPPORT_JSON_PARSE_HH

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace autofsm
{

/** One parsed JSON value; a small closed variant. */
class JsonValue
{
  public:
    enum class Kind
    {
        Null,
        Bool,
        Number,
        String,
        Array,
        Object,
    };

    /** Object members, in document order (duplicate keys rejected). */
    using Member = std::pair<std::string, JsonValue>;

    JsonValue() = default;

    /**
     * Parse @p text as one complete JSON document.
     *
     * @throws std::invalid_argument on any syntax error, trailing
     *         garbage, duplicate object key, or nesting beyond 64
     *         levels (a cheap stack-overflow guard for hostile input).
     */
    static JsonValue parse(std::string_view text);

    Kind kind() const { return kind_; }

    bool isNull() const { return kind_ == Kind::Null; }
    bool isBool() const { return kind_ == Kind::Bool; }
    bool isNumber() const { return kind_ == Kind::Number; }
    bool isString() const { return kind_ == Kind::String; }
    bool isArray() const { return kind_ == Kind::Array; }
    bool isObject() const { return kind_ == Kind::Object; }

    /** @name Checked accessors.
     * Each throws std::invalid_argument when the kind does not match.
     */
    /// @{
    bool asBool() const;
    double asNumber() const;
    /** The number as int64; throws when non-integral or out of range. */
    int64_t asInt() const;
    /** The number as uint64; throws when non-integral or negative. */
    uint64_t asUint() const;
    const std::string &asString() const;
    const std::vector<JsonValue> &items() const;
    const std::vector<Member> &members() const;
    /// @}

    /** Member value of @p key, or nullptr (object kind only). */
    const JsonValue *find(std::string_view key) const;

  private:
    friend class JsonParser;

    Kind kind_ = Kind::Null;
    bool bool_ = false;
    double number_ = 0.0;
    std::string string_;
    std::vector<JsonValue> items_;
    std::vector<Member> members_;
};

/** Stable lower-case name of @p kind ("null", "bool", ...). */
const char *jsonKindName(JsonValue::Kind kind);

} // namespace autofsm

#endif // AUTOFSM_SUPPORT_JSON_PARSE_HH
