#include "support/failpoint.hh"

#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "obs/metrics.hh"
#include "support/rng.hh"

namespace autofsm::failpoint
{

namespace
{

enum class Mode
{
    After, ///< pass N evaluations, then trigger forever
    Times, ///< trigger the first N evaluations, then pass forever
    Every, ///< trigger every Nth evaluation
    Prob,  ///< trigger with seeded probability
};

struct Site
{
    bool active = false;
    Mode mode = Mode::After;
    uint64_t arg = 0;
    double prob = 0.0;
    Rng rng{0};
    uint64_t evaluations = 0;
    uint64_t triggers = 0;
    obs::Counter evalCounter;
    obs::Counter trigCounter;
};

uint64_t
parseCount(const std::string &text, const std::string &spec)
{
    try {
        size_t pos = 0;
        const unsigned long long value = std::stoull(text, &pos);
        if (pos != text.size())
            throw std::invalid_argument("trailing garbage");
        return value;
    } catch (const std::exception &) {
        throw std::invalid_argument("failpoint: bad count in spec '" +
                                    spec + "'");
    }
}

double
parseProbability(const std::string &text, const std::string &spec)
{
    try {
        size_t pos = 0;
        const double value = std::stod(text, &pos);
        if (pos != text.size() || value < 0.0 || value > 1.0)
            throw std::invalid_argument("out of range");
        return value;
    } catch (const std::exception &) {
        throw std::invalid_argument("failpoint: bad probability in spec '" +
                                    spec + "'");
    }
}

std::vector<std::string>
split(const std::string &text, char sep)
{
    std::vector<std::string> parts;
    size_t begin = 0;
    for (;;) {
        const size_t end = text.find(sep, begin);
        if (end == std::string::npos) {
            parts.push_back(text.substr(begin));
            return parts;
        }
        parts.push_back(text.substr(begin, end - begin));
        begin = end + 1;
    }
}

} // anonymous namespace

struct Registry::Impl
{
    mutable std::mutex mutex;
    std::unordered_map<std::string, Site> sites;

    /** Recompute the fast-path flag; callers hold `mutex`. */
    void
    rearm()
    {
        bool any = false;
        for (const auto &[name, site] : sites)
            any |= site.active;
        detail::g_armed.store(any, std::memory_order_relaxed);
    }
};

Registry::Impl &
Registry::impl() const
{
    static Impl instance;
    return instance;
}

Registry &
registry()
{
    static Registry instance;
    return instance;
}

void
Registry::set(const std::string &site, const std::string &spec)
{
    const std::vector<std::string> parts = split(spec, ':');
    Site config;
    config.active = true;
    if (parts[0] == "fail-after" && parts.size() == 2) {
        config.mode = Mode::After;
        config.arg = parseCount(parts[1], spec);
    } else if (parts[0] == "fail-times" && parts.size() == 2) {
        config.mode = Mode::Times;
        config.arg = parseCount(parts[1], spec);
    } else if (parts[0] == "fail-every" && parts.size() == 2) {
        config.mode = Mode::Every;
        config.arg = parseCount(parts[1], spec);
        if (config.arg == 0)
            throw std::invalid_argument(
                "failpoint: fail-every needs N >= 1 in spec '" + spec + "'");
    } else if (parts[0] == "fail-prob" &&
               (parts.size() == 2 || parts.size() == 3)) {
        config.mode = Mode::Prob;
        config.prob = parseProbability(parts[1], spec);
        config.rng.reseed(parts.size() == 3 ? parseCount(parts[2], spec)
                                            : 0x5eedf417ULL);
    } else {
        throw std::invalid_argument("failpoint: unknown spec '" + spec +
                                    "' for site '" + site + "'");
    }
    config.evalCounter = obs::globalMetrics().counter(
        "autofsm_failpoint_evaluations_total",
        "Evaluations of a configured failpoint site.", {{"site", site}});
    config.trigCounter = obs::globalMetrics().counter(
        "autofsm_failpoint_triggers_total",
        "Faults injected by a failpoint site.", {{"site", site}});

    Impl &state = impl();
    std::lock_guard<std::mutex> lock(state.mutex);
    state.sites[site] = std::move(config);
    state.rearm();
}

void
Registry::clear(const std::string &site)
{
    Impl &state = impl();
    std::lock_guard<std::mutex> lock(state.mutex);
    const auto it = state.sites.find(site);
    if (it != state.sites.end())
        it->second.active = false;
    state.rearm();
}

void
Registry::clearAll()
{
    Impl &state = impl();
    std::lock_guard<std::mutex> lock(state.mutex);
    for (auto &[name, site] : state.sites)
        site.active = false;
    state.rearm();
}

void
Registry::configure(const std::string &config)
{
    for (const std::string &entry : split(config, ',')) {
        if (entry.empty())
            continue;
        const size_t colon = entry.find(':');
        if (colon == std::string::npos || colon == 0) {
            throw std::invalid_argument(
                "failpoint: entry '" + entry +
                "' is not of the form site:mode:arg");
        }
        set(entry.substr(0, colon), entry.substr(colon + 1));
    }
}

bool
Registry::configured(const std::string &site) const
{
    Impl &state = impl();
    std::lock_guard<std::mutex> lock(state.mutex);
    const auto it = state.sites.find(site);
    return it != state.sites.end() && it->second.active;
}

SiteStats
Registry::stats(const std::string &site) const
{
    Impl &state = impl();
    std::lock_guard<std::mutex> lock(state.mutex);
    SiteStats out;
    const auto it = state.sites.find(site);
    if (it != state.sites.end()) {
        out.evaluations = it->second.evaluations;
        out.triggers = it->second.triggers;
    }
    return out;
}

namespace detail
{

void
evaluateSlow(const char *site)
{
    Registry::Impl &state = registry().impl();
    std::lock_guard<std::mutex> lock(state.mutex);
    const auto it = state.sites.find(site);
    if (it == state.sites.end() || !it->second.active)
        return;
    Site &config = it->second;
    const uint64_t n = ++config.evaluations; // 1-based
    config.evalCounter.inc();

    bool trigger = false;
    switch (config.mode) {
      case Mode::After: trigger = n > config.arg; break;
      case Mode::Times: trigger = n <= config.arg; break;
      case Mode::Every: trigger = n % config.arg == 0; break;
      case Mode::Prob: trigger = config.rng.uniform() < config.prob; break;
    }
    if (!trigger)
        return;
    ++config.triggers;
    config.trigCounter.inc();
    throw InjectedFault(site);
}

bool
loadEnvConfig()
{
    const char *env = std::getenv("AUTOFSM_FAILPOINTS");
    if (env == nullptr || *env == '\0')
        return true;
    try {
        registry().configure(env);
    } catch (const std::exception &e) {
        // A bad env config must not abort the process at static init;
        // report it and run without the malformed entries.
        std::fprintf(stderr, "AUTOFSM_FAILPOINTS ignored: %s\n", e.what());
    }
    return true;
}

} // namespace detail
} // namespace autofsm::failpoint
