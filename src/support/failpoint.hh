/**
 * @file
 * Deterministic fault-injection registry ("failpoints").
 *
 * Production code plants named sites (`AUTOFSM_FAILPOINT("flow.minimize")`)
 * at the places a fault-tolerant system must survive failing: every design
 * flow stage, trace construction, trace IO, and pool dispatch. A site costs
 * exactly one relaxed atomic load when no failpoint is configured — the
 * registry arms a process-wide flag only while at least one site has an
 * active trigger — so sites can stay compiled into release binaries.
 *
 * Trigger modes (per site, evaluations counted 1-based):
 *
 *  - `fail-after:N`  — pass the first N evaluations, trigger all later ones
 *    (`fail-after:0` triggers always).
 *  - `fail-times:N`  — trigger the first N evaluations, pass afterwards
 *    (a transient fault; drives retry paths).
 *  - `fail-every:N`  — trigger every Nth evaluation.
 *  - `fail-prob:P[:SEED]` — trigger with probability P from a seeded,
 *    per-site xoshiro PRNG (deterministic per evaluation sequence).
 *
 * Configuration is programmatic (`failpoint::registry().set(...)`, used by
 * tests) or environmental: `AUTOFSM_FAILPOINTS=site:mode:arg[,site:...]`
 * is parsed once at process start. A triggered site throws `InjectedFault`
 * and increments `autofsm_failpoint_triggers_total{site=...}`; evaluations
 * of configured sites are counted in
 * `autofsm_failpoint_evaluations_total{site=...}`.
 */

#ifndef AUTOFSM_SUPPORT_FAILPOINT_HH
#define AUTOFSM_SUPPORT_FAILPOINT_HH

#include <atomic>
#include <cstdint>
#include <stdexcept>
#include <string>

namespace autofsm
{

/** The exception a triggered failpoint raises. */
class InjectedFault : public std::runtime_error
{
  public:
    explicit InjectedFault(std::string site)
        : std::runtime_error("injected fault at " + site),
          site_(std::move(site))
    {
    }

    /** Name of the site that triggered. */
    const std::string &site() const { return site_; }

  private:
    std::string site_;
};

namespace failpoint
{

/** Point-in-time tallies of one configured site. */
struct SiteStats
{
    uint64_t evaluations = 0; ///< times the site was reached while configured
    uint64_t triggers = 0;    ///< times the site threw
};

class Registry;

/** The process-wide registry every AUTOFSM_FAILPOINT site consults. */
Registry &registry();

namespace detail
{

/** Armed while any site is configured; the only hot-path state. */
inline std::atomic<bool> g_armed{false};

/** Slow path behind the armed check; throws InjectedFault on trigger. */
void evaluateSlow(const char *site);

/** One-time AUTOFSM_FAILPOINTS parse, run at static initialization. */
bool loadEnvConfig();
inline const bool g_envLoaded = loadEnvConfig();

} // namespace detail

/**
 * Evaluate the site named @p site. A single relaxed load when nothing is
 * configured anywhere; otherwise consults the registry and throws
 * InjectedFault if the site's trigger fires.
 */
inline void
evaluate(const char *site)
{
    if (detail::g_armed.load(std::memory_order_relaxed)) [[unlikely]]
        detail::evaluateSlow(site);
}

/**
 * True while any failpoint is configured. Caches that must not mask
 * injected faults (e.g. the design-stage memo, which would serve a
 * memoized tail instead of reaching the armed site) consult this to
 * bypass themselves during fault-injection runs.
 */
inline bool
armed()
{
    return detail::g_armed.load(std::memory_order_relaxed);
}

/**
 * The registry proper. Thread-safe; all methods may race with concurrent
 * site evaluations.
 */
class Registry
{
  public:
    /**
     * Configure @p site with @p spec ("mode:arg", see file comment).
     * Replaces any existing config and resets the site's counters.
     *
     * @throws std::invalid_argument on an unknown mode or bad argument.
     */
    void set(const std::string &site, const std::string &spec);

    /** Remove @p site's config (its stats remain readable until reused). */
    void clear(const std::string &site);

    /** Remove every configured site and disarm the fast-path flag. */
    void clearAll();

    /**
     * Parse a full config string `site:mode:arg[,site:mode:arg...]`
     * (the AUTOFSM_FAILPOINTS format) and set every entry.
     */
    void configure(const std::string &config);

    /** True if @p site currently has an active trigger config. */
    bool configured(const std::string &site) const;

    /** Tallies for @p site (zeros if never configured). */
    SiteStats stats(const std::string &site) const;

  private:
    friend Registry &registry();
    friend void detail::evaluateSlow(const char *site);

    Registry() = default;

    struct Impl;
    Impl &impl() const;
};

} // namespace failpoint
} // namespace autofsm

/**
 * Plant a failpoint site. `name` must be a string literal; the call is a
 * single relaxed atomic load unless some failpoint is configured.
 * Compile out entirely with -DAUTOFSM_NO_FAILPOINTS.
 */
#ifdef AUTOFSM_NO_FAILPOINTS
#define AUTOFSM_FAILPOINT(name) ((void)0)
#else
#define AUTOFSM_FAILPOINT(name) ::autofsm::failpoint::evaluate(name)
#endif

#endif // AUTOFSM_SUPPORT_FAILPOINT_HH
