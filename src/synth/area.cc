#include "synth/area.hh"

#include <cassert>

#include "logicmin/espresso.hh"
#include "logicmin/minimize.hh"
#include "support/bits.hh"

namespace autofsm
{

AreaEstimate
estimateFsmArea(const Dfa &fsm, const AreaCosts &costs)
{
    AreaEstimate est;
    est.states = fsm.numStates();

    const int n = fsm.numStates();
    if (n <= 1) {
        // Constant predictor: a wire, no sequential logic at all.
        est.area = costs.output;
        return est;
    }

    const int k = ceilLog2(static_cast<uint32_t>(n));
    est.flops = k;

    // Next-state logic: k functions of (k state bits + 1 input bit).
    // Input encoding: bits [0, k) = current state code, bit k = din.
    // Codes >= n never occur and are don't-cares for every function.
    EspressoOptions quick;
    quick.maxIterations = 2; // area estimation favors speed

    for (int bit = 0; bit < k; ++bit) {
        TruthTable table(k + 1);
        for (int s = 0; s < (1 << k); ++s) {
            for (int din = 0; din < 2; ++din) {
                const uint32_t row = static_cast<uint32_t>(s) |
                    (static_cast<uint32_t>(din) << k);
                if (s >= n) {
                    table.addDontCare(row);
                } else if (bitOf(static_cast<uint32_t>(fsm.next(s, din)),
                                 bit)) {
                    table.addOn(row);
                }
            }
        }
        const Cover cover = minimizeEspresso(table, quick);
        est.terms += static_cast<int>(cover.size());
        est.literals += cover.literalCount();
    }

    // Moore output: one function of the k state bits.
    {
        TruthTable table(k);
        for (int s = 0; s < (1 << k); ++s) {
            if (s >= n)
                table.addDontCare(static_cast<uint32_t>(s));
            else if (fsm.output(s))
                table.addOn(static_cast<uint32_t>(s));
        }
        const Cover cover = minimizeEspresso(table, quick);
        est.terms += static_cast<int>(cover.size());
        est.literals += cover.literalCount();
    }

    est.area = costs.flop * est.flops + costs.term * est.terms +
        costs.literal * est.literals + costs.output;
    return est;
}

double
tableArea(double bits, const AreaCosts &costs)
{
    assert(bits >= 0.0);
    return bits * costs.sramBit;
}

LineFit
fitAreaLine(const std::vector<AreaEstimate> &samples)
{
    std::vector<double> xs, ys;
    xs.reserve(samples.size());
    ys.reserve(samples.size());
    for (const auto &sample : samples) {
        xs.push_back(static_cast<double>(sample.states));
        ys.push_back(sample.area);
    }
    return fitLine(xs, ys);
}

} // namespace autofsm
