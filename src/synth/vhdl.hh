/**
 * @file
 * Synthesizable VHDL emission for generated FSM predictors (Section 4.8).
 *
 * Emits the classic two-process Moore-machine template (combinational
 * next-state/output process + clocked state register) that "every
 * synthesis tool" accepts. The paper feeds the equivalent description to
 * Synopsys; here the artifact is golden-text tested and consumed by the
 * area cost model.
 */

#ifndef AUTOFSM_SYNTH_VHDL_HH
#define AUTOFSM_SYNTH_VHDL_HH

#include <string>

#include "automata/dfa.hh"

namespace autofsm
{

/** Options for the VHDL writer. */
struct VhdlOptions
{
    /** Entity name; must be a valid VHDL identifier. */
    std::string entityName = "fsm_predictor";
    /** Use one-hot state encoding instead of binary. */
    bool oneHot = false;
};

/**
 * Render @p fsm as a synthesizable VHDL entity.
 *
 * Ports: clk, rst (synchronous, returns to the start state), din (the
 * observed outcome) and pred (the Moore prediction output).
 */
std::string toVhdl(const Dfa &fsm, const VhdlOptions &options = {});

} // namespace autofsm

#endif // AUTOFSM_SYNTH_VHDL_HH
