/**
 * @file
 * Gate-level area cost model (substitute for the paper's Synopsys runs).
 *
 * Section 7.4 synthesizes a sample of generated FSMs to establish that
 * area is (boundedly) linear in state count, then uses the fitted line
 * for all design-space numbers. We reproduce the *mechanism*: encode the
 * states in binary, derive the next-state and output logic as truth
 * tables, minimize them with the logicmin substrate, and charge costs
 * per flip-flop, product term and literal. Highly regular machines
 * minimize to fewer terms and fall below the linear trend, exactly the
 * outlier behavior Figure 4 reports.
 */

#ifndef AUTOFSM_SYNTH_AREA_HH
#define AUTOFSM_SYNTH_AREA_HH

#include <vector>

#include "automata/dfa.hh"
#include "support/stats.hh"

namespace autofsm
{

/** Technology-ish constants, in abstract gate-equivalent units. */
struct AreaCosts
{
    double flop = 8.0;     ///< per state-register bit
    double term = 1.0;     ///< per product term (AND gate input column)
    double literal = 0.25; ///< per literal within a term
    double output = 2.0;   ///< per output driver
    /** Per-bit cost of SRAM-backed prediction tables (Figure 5 axes). */
    double sramBit = 1.5;
    /** Per-bit cost of fully-associative tag match (custom entries). */
    double camBit = 3.0;
};

/** Breakdown of one FSM's estimated implementation cost. */
struct AreaEstimate
{
    int states = 0;
    int flops = 0;     ///< state register width
    int terms = 0;     ///< product terms across all logic functions
    int literals = 0;  ///< literals across all logic functions
    double area = 0.0; ///< weighted total
};

/**
 * Estimate the implementation area of @p fsm by performing the
 * binary-encoding + two-level-minimization synthesis described above.
 */
AreaEstimate estimateFsmArea(const Dfa &fsm, const AreaCosts &costs = {});

/** Area of a RAM table of @p bits total storage bits. */
double tableArea(double bits, const AreaCosts &costs = {});

/**
 * Fit the linear states -> area trend over a sample of machines, as the
 * paper does in Figure 4 to avoid synthesizing every candidate.
 */
LineFit fitAreaLine(const std::vector<AreaEstimate> &samples);

} // namespace autofsm

#endif // AUTOFSM_SYNTH_AREA_HH
