/**
 * @file
 * Synthesizable Verilog emission for generated FSM predictors.
 *
 * Companion to the VHDL writer (Section 4.8): the same two-process
 * Moore template in Verilog-2001, for flows that prefer it. Both
 * emitters are co-simulated against the source machine in tests.
 */

#ifndef AUTOFSM_SYNTH_VERILOG_HH
#define AUTOFSM_SYNTH_VERILOG_HH

#include <string>

#include "automata/dfa.hh"

namespace autofsm
{

/** Options for the Verilog writer. */
struct VerilogOptions
{
    /** Module name; must be a valid Verilog identifier. */
    std::string moduleName = "fsm_predictor";
};

/**
 * Render @p fsm as a synthesizable Verilog-2001 module.
 *
 * Ports: clk, rst (synchronous), din, pred; binary state encoding.
 */
std::string toVerilog(const Dfa &fsm, const VerilogOptions &options = {});

} // namespace autofsm

#endif // AUTOFSM_SYNTH_VERILOG_HH
