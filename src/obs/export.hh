/**
 * @file
 * Exporters for the telemetry subsystem.
 *
 * Two wire formats over a `MetricsSnapshot`:
 *
 *  - **JSON** (`renderMetricsJson`) via the repo's deterministic
 *    `JsonWriter`: machine-diffable, histograms carry estimated
 *    p50/p90/p99 alongside the raw buckets.
 *  - **Prometheus text exposition** (`renderPrometheusText`): one
 *    `# HELP` / `# TYPE` header per metric family, histogram buckets in
 *    cumulative `_bucket{le=...}` form with `_sum` / `_count`.
 *
 * Span trees export to JSON only (`renderSpansJson`, nested children);
 * the Prometheus format has no span concept.
 *
 * All three are pure functions of their inputs: equal snapshots yield
 * equal bytes, which is what the golden tests pin down.
 */

#ifndef AUTOFSM_OBS_EXPORT_HH
#define AUTOFSM_OBS_EXPORT_HH

#include <iosfwd>
#include <string>
#include <vector>

#include "obs/metrics.hh"
#include "obs/span.hh"

namespace autofsm::obs
{

/** Render @p snapshot as a JSON document: {"metrics":[...]}. */
void renderMetricsJson(std::ostream &out, const MetricsSnapshot &snapshot);
std::string metricsToJson(const MetricsSnapshot &snapshot);

/** Render @p snapshot in the Prometheus text exposition format. */
void renderPrometheusText(std::ostream &out,
                          const MetricsSnapshot &snapshot);
std::string metricsToPrometheus(const MetricsSnapshot &snapshot);

/**
 * The one scrape path every consumer shares: snapshot the global
 * registry and render it in the Prometheus text format. The serve
 * daemon's metrics frame, the bench `--metrics-out=*.prom` export and
 * ad-hoc dumps all call this, so their bytes agree by construction.
 */
void renderPrometheus(std::ostream &out);
std::string renderPrometheus();

/**
 * Render finished spans as a JSON forest: {"spans":[...]}, each node
 * {"id","name","startMillis","millis","children":[...]}. Children nest
 * under their parent; spans whose parent is absent render as roots.
 * Siblings are ordered by id (start order).
 */
void renderSpansJson(std::ostream &out,
                     const std::vector<SpanRecord> &spans);
std::string spansToJson(const std::vector<SpanRecord> &spans);

/**
 * Render finished spans in the Chrome trace-event format, loadable in
 * chrome://tracing and Perfetto: {"traceEvents":[...],
 * "displayTimeUnit":"ms"}, one complete event ("ph":"X") per span with
 * ts/dur in microseconds, pid 1 and tid = the span's recording-thread
 * ordinal. Span and parent ids ride in "args" so tooling can rebuild
 * the tree.
 */
void renderTraceEvents(std::ostream &out,
                       const std::vector<SpanRecord> &spans);
std::string traceEventsToJson(const std::vector<SpanRecord> &spans);

} // namespace autofsm::obs

#endif // AUTOFSM_OBS_EXPORT_HH
