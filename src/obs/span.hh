/**
 * @file
 * Hierarchical scoped spans.
 *
 * A `Tracer` hands out stable, monotonically increasing span ids and
 * collects finished spans into per-thread buffers that `snapshot()`
 * merges and sorts. `SpanScope` is the RAII front end: it always *times*
 * its region (callers like `DesignFlow` build their `FlowTrace` from the
 * measured durations, so timing must survive a disabled tracer), but it
 * only *records* a span when the tracer was enabled at construction.
 *
 * Parentage defaults to the innermost open span on the current thread;
 * work fanned out across a pool passes the parent id explicitly so the
 * span tree stays connected across threads.
 *
 * With `-DAUTOFSM_NO_TELEMETRY` the tracer machinery compiles out and a
 * SpanScope degrades to a plain steady_clock stopwatch.
 */

#ifndef AUTOFSM_OBS_SPAN_HH
#define AUTOFSM_OBS_SPAN_HH

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace autofsm::obs
{

/** One finished span. Ids are 1-based in start order; parent 0 = root. */
struct SpanRecord
{
    uint64_t id = 0;
    uint64_t parent = 0;
    std::string name;
    /** Start offset from the tracer's epoch, milliseconds. */
    double startMillis = 0.0;
    double durationMillis = 0.0;
};

class SpanScope;

/** Collects spans; one global instance (globalTracer()), tests may own
 *  private ones. Disabled by default so long runs don't grow buffers. */
class Tracer
{
  public:
    Tracer();
    ~Tracer();

    Tracer(const Tracer &) = delete;
    Tracer &operator=(const Tracer &) = delete;

    void enable(bool on) { enabled_.store(on, std::memory_order_relaxed); }

    bool
    enabled() const
    {
#ifdef AUTOFSM_NO_TELEMETRY
        return false;
#else
        return enabled_.load(std::memory_order_relaxed);
#endif
    }

    /** Innermost open span on the calling thread (0 when none). */
    uint64_t currentSpan() const;

    /** Every finished span so far, merged across threads, sorted by id. */
    std::vector<SpanRecord> snapshot() const;

    /** Drop all recorded spans (open SpanScopes still record on finish). */
    void clear();

  private:
    friend class SpanScope;

    struct Buffer
    {
        std::mutex mutex;
        std::vector<SpanRecord> records;
    };

    struct ThreadState
    {
        std::vector<uint64_t> stack;
        std::shared_ptr<Buffer> buffer;
    };

    /** This thread's stack+buffer for this tracer (created on demand). */
    ThreadState &stateForThread() const;

    double millisSinceEpoch() const;

    std::atomic<bool> enabled_{false};
    const uint64_t id_;
    std::atomic<uint64_t> nextSpanId_{1};
    std::chrono::steady_clock::time_point epoch_;

    mutable std::mutex mutex_;
    mutable std::vector<std::shared_ptr<Buffer>> buffers_;
};

/** RAII timed region; records into @p tracer if enabled (may be null). */
class SpanScope
{
  public:
    /** Child of the innermost open span on this thread. */
    SpanScope(Tracer *tracer, std::string_view name);

    /** Child of an explicit @p parent id (cross-thread fan-out). */
    SpanScope(Tracer *tracer, std::string_view name, uint64_t parent);

    ~SpanScope();

    SpanScope(const SpanScope &) = delete;
    SpanScope &operator=(const SpanScope &) = delete;

    /**
     * Stop the clock, record the span (if tracing), and return the
     * elapsed milliseconds. Idempotent; the destructor calls it too.
     */
    double finishMillis();

    /** This span's id (0 when the tracer was disabled or null). */
    uint64_t id() const { return id_; }

  private:
    void start(Tracer *tracer, std::string_view name, uint64_t parent,
               bool parent_from_stack);

    Tracer *tracer_ = nullptr;
    std::string name_;
    uint64_t id_ = 0;
    uint64_t parent_ = 0;
    std::chrono::steady_clock::time_point start_;
    double startMillis_ = 0.0;
    bool recording_ = false;
    bool finished_ = false;
    double duration_ = 0.0;
};

/** The process-wide tracer (disabled until a bench/test enables it). */
Tracer &globalTracer();

} // namespace autofsm::obs

#endif // AUTOFSM_OBS_SPAN_HH
