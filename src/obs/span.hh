/**
 * @file
 * Hierarchical scoped spans.
 *
 * A `Tracer` hands out stable, monotonically increasing span ids and
 * collects finished spans into per-thread buffers that `snapshot()`
 * merges and sorts. `SpanScope` is the RAII front end: it always *times*
 * its region (callers like `DesignFlow` build their `FlowTrace` from the
 * measured durations, so timing must survive a disabled tracer), but it
 * only *records* a span when the tracer was enabled at construction.
 *
 * Parentage defaults to the innermost open span on the current thread;
 * work fanned out across a pool passes the parent id explicitly so the
 * span tree stays connected across threads. Spans whose lifetime does
 * not nest in one scope (a serve request that is admitted on one thread
 * and answered from another) use the manual `openSpan`/`closeSpan`
 * pair.
 *
 * Consumers that poll (the serve daemon's slow-request ring) use
 * `drain()`, which consumes everything recorded since the previous
 * drain instead of rescanning the full history like `snapshot()`.
 *
 * Instrumentation sites reach their tracer through `currentTracer()`:
 * the process-wide `globalTracer()` unless a `TracerBinding` installed a
 * thread-local override (how the daemon routes the design flow's spans
 * into its private tracer).
 *
 * With `-DAUTOFSM_NO_TELEMETRY` the tracer machinery compiles out and a
 * SpanScope degrades to a plain steady_clock stopwatch.
 */

#ifndef AUTOFSM_OBS_SPAN_HH
#define AUTOFSM_OBS_SPAN_HH

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace autofsm::obs
{

/** One finished span. Ids are 1-based in start order; parent 0 = root. */
struct SpanRecord
{
    uint64_t id = 0;
    uint64_t parent = 0;
    std::string name;
    /** Start offset from the tracer's epoch, milliseconds. */
    double startMillis = 0.0;
    double durationMillis = 0.0;
    /** Ordinal of the recording thread within this tracer (0-based). */
    uint32_t thread = 0;
};

class SpanScope;

/** Collects spans; one global instance (globalTracer()), tests may own
 *  private ones. Disabled by default so long runs don't grow buffers. */
class Tracer
{
  public:
    Tracer();
    ~Tracer();

    Tracer(const Tracer &) = delete;
    Tracer &operator=(const Tracer &) = delete;

    void enable(bool on) { enabled_.store(on, std::memory_order_relaxed); }

    bool
    enabled() const
    {
#ifdef AUTOFSM_NO_TELEMETRY
        return false;
#else
        return enabled_.load(std::memory_order_relaxed);
#endif
    }

    /** Innermost open span on the calling thread (0 when none). */
    uint64_t currentSpan() const;

    /**
     * Open a span whose close happens on another thread or in another
     * scope (a request's lifetime span). Returns the span id, or 0 when
     * the tracer is disabled. The span does not join the calling
     * thread's stack; children name it as their explicit parent.
     */
    uint64_t openSpan(std::string_view name, uint64_t parent = 0);

    /** Close a span from openSpan; records it. No-op for id 0/unknown. */
    void closeSpan(uint64_t id);

    /** Every finished span so far, merged across threads, sorted by id. */
    std::vector<SpanRecord> snapshot() const;

    /**
     * Consume-since-last-drain: move every span recorded since the
     * previous drain() out of the per-thread buffers, sorted by id.
     * Unlike snapshot() this never rescans history, so periodic
     * consumers stay O(new spans) per call. Spans returned here no
     * longer appear in snapshot().
     */
    std::vector<SpanRecord> drain();

    /** Drop all recorded spans (open SpanScopes still record on finish). */
    void clear();

  private:
    friend class SpanScope;

    struct Buffer
    {
        std::mutex mutex;
        std::vector<SpanRecord> records;
    };

    struct ThreadState
    {
        std::vector<uint64_t> stack;
        std::shared_ptr<Buffer> buffer;
        /** This thread's ordinal within the tracer (buffer index). */
        uint32_t ordinal = 0;
    };

    /** A manually opened, not yet closed span (openSpan/closeSpan). */
    struct OpenSpan
    {
        std::string name;
        uint64_t parent = 0;
        double startMillis = 0.0;
        std::chrono::steady_clock::time_point start;
        uint32_t thread = 0;
    };

    /** This thread's stack+buffer for this tracer (created on demand). */
    ThreadState &stateForThread() const;

    double millisSinceEpoch() const;

    std::atomic<bool> enabled_{false};
    const uint64_t id_;
    std::atomic<uint64_t> nextSpanId_{1};
    std::chrono::steady_clock::time_point epoch_;

    mutable std::mutex mutex_;
    mutable std::vector<std::shared_ptr<Buffer>> buffers_;
    std::unordered_map<uint64_t, OpenSpan> open_;
};

/** RAII timed region; records into @p tracer if enabled (may be null). */
class SpanScope
{
  public:
    /** Child of the innermost open span on this thread. */
    SpanScope(Tracer *tracer, std::string_view name);

    /** Child of an explicit @p parent id (cross-thread fan-out). */
    SpanScope(Tracer *tracer, std::string_view name, uint64_t parent);

    ~SpanScope();

    SpanScope(const SpanScope &) = delete;
    SpanScope &operator=(const SpanScope &) = delete;

    /**
     * Stop the clock, record the span (if tracing), and return the
     * elapsed milliseconds. Idempotent; the destructor calls it too.
     */
    double finishMillis();

    /** This span's id (0 when the tracer was disabled or null). */
    uint64_t id() const { return id_; }

  private:
    void start(Tracer *tracer, std::string_view name, uint64_t parent,
               bool parent_from_stack);

    Tracer *tracer_ = nullptr;
    std::string name_;
    uint64_t id_ = 0;
    uint64_t parent_ = 0;
    std::chrono::steady_clock::time_point start_;
    double startMillis_ = 0.0;
    bool recording_ = false;
    bool finished_ = false;
    double duration_ = 0.0;
};

/** The process-wide tracer (disabled until a bench/test enables it). */
Tracer &globalTracer();

/**
 * The tracer instrumentation sites should record into: the thread's
 * `TracerBinding` override when one is active, otherwise
 * `globalTracer()`. Never null.
 */
Tracer *currentTracer();

/**
 * Thread-local tracer override, RAII. The serve dispatcher binds its
 * private tracer before running a batch; worker threads re-bind inside
 * the fanned-out item so the flow's spans land in the same tracer
 * regardless of which pool thread runs them.
 */
class TracerBinding
{
  public:
    explicit TracerBinding(Tracer *tracer);
    ~TracerBinding();

    TracerBinding(const TracerBinding &) = delete;
    TracerBinding &operator=(const TracerBinding &) = delete;

  private:
    Tracer *previous_ = nullptr;
};

} // namespace autofsm::obs

#endif // AUTOFSM_OBS_SPAN_HH
