#include "obs/export.hh"

#include <cstdio>
#include <limits>
#include <map>
#include <ostream>
#include <sstream>

#include "support/json.hh"
#include "support/stats.hh"

namespace autofsm::obs
{

namespace
{

/** Fixed "%.12g" rendering, matching JsonWriter's double format. */
std::string
formatDouble(double value)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.12g", value);
    return buf;
}

/** Escape a Prometheus label value: backslash, quote, newline. */
std::string
promEscape(const std::string &text)
{
    std::string out;
    out.reserve(text.size());
    for (const char c : text) {
        switch (c) {
          case '\\': out += "\\\\"; break;
          case '"': out += "\\\""; break;
          case '\n': out += "\\n"; break;
          default: out += c;
        }
    }
    return out;
}

/** Render {k="v",...}; @p extra appends one more label (e.g. le). */
std::string
promLabels(const Labels &labels, const std::string &extra_key = {},
           const std::string &extra_value = {})
{
    if (labels.empty() && extra_key.empty())
        return {};
    std::string out = "{";
    bool first = true;
    for (const auto &[k, v] : labels) {
        if (!first)
            out += ',';
        first = false;
        out += k + "=\"" + promEscape(v) + '"';
    }
    if (!extra_key.empty()) {
        if (!first)
            out += ',';
        out += extra_key + "=\"" + promEscape(extra_value) + '"';
    }
    out += '}';
    return out;
}

void
renderOneJson(JsonWriter &json, const MetricValue &metric)
{
    json.beginObject();
    json.key("name").value(metric.name);
    json.key("kind").value(metricKindName(metric.kind));
    if (!metric.help.empty())
        json.key("help").value(metric.help);
    if (!metric.labels.empty()) {
        json.key("labels").beginObject();
        for (const auto &[k, v] : metric.labels)
            json.key(k).value(v);
        json.endObject();
    }
    switch (metric.kind) {
      case MetricKind::Counter:
        json.key("value").value(metric.count);
        break;
      case MetricKind::Gauge:
        json.key("value").value(metric.value);
        break;
      case MetricKind::Histogram: {
        const HistogramValue &hist = metric.histogram;
        json.key("count").value(hist.count);
        json.key("sum").value(hist.sum);
        json.key("p50").value(histogramQuantile(
            hist.upperBounds, hist.bucketCounts, 50.0));
        json.key("p90").value(histogramQuantile(
            hist.upperBounds, hist.bucketCounts, 90.0));
        json.key("p99").value(histogramQuantile(
            hist.upperBounds, hist.bucketCounts, 99.0));
        json.key("buckets").beginArray();
        for (size_t b = 0; b < hist.bucketCounts.size(); ++b) {
            json.beginObject();
            json.key("le");
            if (b < hist.upperBounds.size()) {
                json.value(hist.upperBounds[b]);
            } else {
                // +Inf overflow bucket; JSON has no Inf literal.
                json.value(
                    std::numeric_limits<double>::infinity());
            }
            json.key("count").value(hist.bucketCounts[b]);
            json.endObject();
        }
        json.endArray();
        break;
      }
    }
    json.endObject();
}

} // anonymous namespace

void
renderMetricsJson(std::ostream &out, const MetricsSnapshot &snapshot)
{
    JsonWriter json(out);
    json.beginObject();
    json.key("metrics").beginArray();
    for (const MetricValue &metric : snapshot.metrics)
        renderOneJson(json, metric);
    json.endArray();
    json.endObject();
}

std::string
metricsToJson(const MetricsSnapshot &snapshot)
{
    std::ostringstream out;
    renderMetricsJson(out, snapshot);
    return out.str();
}

void
renderPrometheusText(std::ostream &out, const MetricsSnapshot &snapshot)
{
    std::string current_family;
    for (const MetricValue &metric : snapshot.metrics) {
        if (metric.name != current_family) {
            current_family = metric.name;
            if (!metric.help.empty())
                out << "# HELP " << metric.name << ' '
                    << promEscape(metric.help) << '\n';
            out << "# TYPE " << metric.name << ' '
                << metricKindName(metric.kind) << '\n';
        }
        switch (metric.kind) {
          case MetricKind::Counter:
            out << metric.name << promLabels(metric.labels) << ' '
                << metric.count << '\n';
            break;
          case MetricKind::Gauge:
            out << metric.name << promLabels(metric.labels) << ' '
                << formatDouble(metric.value) << '\n';
            break;
          case MetricKind::Histogram: {
            const HistogramValue &hist = metric.histogram;
            uint64_t cumulative = 0;
            for (size_t b = 0; b < hist.bucketCounts.size(); ++b) {
                cumulative += hist.bucketCounts[b];
                const std::string le = b < hist.upperBounds.size()
                    ? formatDouble(hist.upperBounds[b])
                    : std::string("+Inf");
                out << metric.name << "_bucket"
                    << promLabels(metric.labels, "le", le) << ' '
                    << cumulative << '\n';
            }
            out << metric.name << "_sum" << promLabels(metric.labels)
                << ' ' << formatDouble(hist.sum) << '\n';
            out << metric.name << "_count" << promLabels(metric.labels)
                << ' ' << hist.count << '\n';
            break;
          }
        }
    }
}

std::string
metricsToPrometheus(const MetricsSnapshot &snapshot)
{
    std::ostringstream out;
    renderPrometheusText(out, snapshot);
    return out.str();
}

void
renderPrometheus(std::ostream &out)
{
    renderPrometheusText(out, globalMetrics().snapshot());
}

std::string
renderPrometheus()
{
    std::ostringstream out;
    renderPrometheus(out);
    return out.str();
}

namespace
{

void
renderSpanNode(JsonWriter &json, const SpanRecord &span,
               const std::multimap<uint64_t, const SpanRecord *> &children)
{
    json.beginObject();
    json.key("id").value(span.id);
    json.key("name").value(span.name);
    json.key("startMillis").value(span.startMillis);
    json.key("millis").value(span.durationMillis);
    const auto [begin, end] = children.equal_range(span.id);
    if (begin != end) {
        json.key("children").beginArray();
        for (auto it = begin; it != end; ++it)
            renderSpanNode(json, *it->second, children);
        json.endArray();
    }
    json.endObject();
}

} // anonymous namespace

void
renderSpansJson(std::ostream &out, const std::vector<SpanRecord> &spans)
{
    // Index children by parent; the snapshot is sorted by id, and
    // multimap preserves insertion order per key, so siblings render in
    // start order.
    std::map<uint64_t, const SpanRecord *> by_id;
    for (const SpanRecord &span : spans)
        by_id.emplace(span.id, &span);
    std::multimap<uint64_t, const SpanRecord *> children;
    std::vector<const SpanRecord *> roots;
    for (const SpanRecord &span : spans) {
        if (span.parent != 0 && by_id.count(span.parent))
            children.emplace(span.parent, &span);
        else
            roots.push_back(&span);
    }

    JsonWriter json(out);
    json.beginObject();
    json.key("spans").beginArray();
    for (const SpanRecord *root : roots)
        renderSpanNode(json, *root, children);
    json.endArray();
    json.endObject();
}

std::string
spansToJson(const std::vector<SpanRecord> &spans)
{
    std::ostringstream out;
    renderSpansJson(out, spans);
    return out.str();
}

void
renderTraceEvents(std::ostream &out, const std::vector<SpanRecord> &spans)
{
    JsonWriter json(out);
    json.beginObject();
    json.key("traceEvents").beginArray();
    for (const SpanRecord &span : spans) {
        json.beginObject();
        json.key("name").value(span.name);
        json.key("cat").value("autofsm");
        json.key("ph").value("X");
        json.key("ts").value(span.startMillis * 1000.0);
        json.key("dur").value(span.durationMillis * 1000.0);
        json.key("pid").value(uint64_t{1});
        json.key("tid").value(span.thread);
        json.key("args").beginObject();
        json.key("id").value(span.id);
        json.key("parent").value(span.parent);
        json.endObject();
        json.endObject();
    }
    json.endArray();
    json.key("displayTimeUnit").value("ms");
    json.endObject();
}

std::string
traceEventsToJson(const std::vector<SpanRecord> &spans)
{
    std::ostringstream out;
    renderTraceEvents(out, spans);
    return out.str();
}

} // namespace autofsm::obs
