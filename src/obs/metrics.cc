#include "obs/metrics.hh"

#include <algorithm>
#include <stdexcept>

namespace autofsm::obs
{

namespace
{

/** Process-unique registry ids; never reused, so a stale thread-local
 *  cache entry can never alias a newer registry at the same address. */
std::atomic<uint64_t> next_registry_id{1};

/** Append @p s to @p key with the \x1f separator and the \x1e escape
 *  byte escaped, so arbitrary label text cannot forge a separator. */
void
appendKeyComponent(std::string &key, std::string_view s)
{
    for (const char c : s) {
        if (c == '\x1f' || c == '\x1e')
            key += '\x1e';
        key += c;
    }
}

/** Canonical text form of (name, labels), used as the dedup key and as
 *  the deterministic sort key of snapshots. */
std::string
metricKey(std::string_view name, const Labels &labels)
{
    std::string key;
    appendKeyComponent(key, name);
    for (const auto &[k, v] : labels) {
        key += '\x1f';
        appendKeyComponent(key, k);
        key += '\x1f';
        appendKeyComponent(key, v);
    }
    return key;
}

} // anonymous namespace

const char *
metricKindName(MetricKind kind)
{
    switch (kind) {
      case MetricKind::Counter: return "counter";
      case MetricKind::Gauge: return "gauge";
      case MetricKind::Histogram: return "histogram";
    }
    return "?";
}

MetricsRegistry::MetricsRegistry()
    : id_(next_registry_id.fetch_add(1, std::memory_order_relaxed))
{
}

MetricsRegistry::~MetricsRegistry() = default;

MetricsRegistry::Shard *
MetricsRegistry::shardForThread()
{
    // One-entry cache: almost every process uses exactly one registry
    // (globalMetrics()), so the common case is two loads and a compare.
    thread_local uint64_t cached_id = 0;
    thread_local Shard *cached_shard = nullptr;
    if (cached_id == id_)
        return cached_shard;

    // Slow path: find or create this thread's shard for this registry.
    // The map holds shared_ptrs so a shard outlives whichever of
    // {thread, registry} dies first.
    thread_local std::unordered_map<uint64_t, std::shared_ptr<Shard>>
        shards_of_thread;
    std::shared_ptr<Shard> &entry = shards_of_thread[id_];
    if (!entry) {
        entry = std::make_shared<Shard>(kShardSlots);
        std::lock_guard<std::mutex> lock(mutex_);
        shards_.push_back(entry);
    }
    cached_id = id_;
    cached_shard = entry.get();
    return cached_shard;
}

MetricsRegistry::RegisteredMetric
MetricsRegistry::registerMetric(std::string_view name, std::string_view help,
                                Labels labels, MetricKind kind, size_t slots,
                                std::vector<double> bounds)
{
    if (name.empty())
        throw std::invalid_argument("metric name must not be empty");
    std::lock_guard<std::mutex> lock(mutex_);
    const std::string key = metricKey(name, labels);
    const auto it = byKey_.find(key);
    if (it != byKey_.end()) {
        const MetricInfo &existing = metrics_[it->second];
        if (existing.kind != kind) {
            throw std::invalid_argument(
                "metric '" + std::string(name) +
                "' re-registered with a different kind");
        }
        if (kind == MetricKind::Histogram &&
            *existing.bounds != bounds) {
            throw std::invalid_argument(
                "histogram '" + std::string(name) +
                "' re-registered with different buckets");
        }
        RegisteredMetric out;
        out.slot = existing.slot;
        if (kind == MetricKind::Gauge)
            out.gaugeCell = gauges_[existing.slot].get();
        out.bounds = existing.bounds;
        return out;
    }

    if (kind == MetricKind::Gauge) {
        MetricInfo info;
        info.name = std::string(name);
        info.help = std::string(help);
        info.labels = std::move(labels);
        info.kind = kind;
        info.slot = static_cast<uint32_t>(gauges_.size());
        gauges_.push_back(std::make_unique<std::atomic<uint64_t>>(
            std::bit_cast<uint64_t>(0.0)));
        byKey_.emplace(key, metrics_.size());
        metrics_.push_back(std::move(info));
        RegisteredMetric out;
        out.slot = metrics_.back().slot;
        out.gaugeCell = gauges_.back().get();
        return out;
    }

    if (nextSlot_ + slots > kShardSlots) {
        throw std::length_error(
            "MetricsRegistry: shard slot capacity exhausted");
    }
    MetricInfo info;
    info.name = std::string(name);
    info.help = std::string(help);
    info.labels = std::move(labels);
    info.kind = kind;
    info.slot = static_cast<uint32_t>(nextSlot_);
    if (kind == MetricKind::Histogram) {
        info.bounds = std::make_shared<const std::vector<double>>(
            std::move(bounds));
    }
    nextSlot_ += slots;
    byKey_.emplace(key, metrics_.size());
    metrics_.push_back(std::move(info));
    RegisteredMetric out;
    out.slot = metrics_.back().slot;
    out.bounds = metrics_.back().bounds;
    return out;
}

Counter
MetricsRegistry::counter(std::string_view name, std::string_view help,
                         Labels labels)
{
    const RegisteredMetric info = registerMetric(
        name, help, std::move(labels), MetricKind::Counter, 1, {});
    return Counter(this, info.slot);
}

Gauge
MetricsRegistry::gauge(std::string_view name, std::string_view help,
                       Labels labels)
{
    const RegisteredMetric info = registerMetric(
        name, help, std::move(labels), MetricKind::Gauge, 0, {});
    return Gauge(this, info.gaugeCell);
}

Histogram
MetricsRegistry::histogram(std::string_view name, std::string_view help,
                           std::vector<double> upperBounds, Labels labels)
{
    if (!std::is_sorted(upperBounds.begin(), upperBounds.end())) {
        throw std::invalid_argument(
            "histogram '" + std::string(name) +
            "' bucket bounds must be ascending");
    }
    // Layout: one slot per finite bucket, +Inf bucket, count, sum.
    const size_t slots = upperBounds.size() + 3;
    const RegisteredMetric info =
        registerMetric(name, help, std::move(labels),
                       MetricKind::Histogram, slots, std::move(upperBounds));
    return Histogram(this, info.slot, info.bounds);
}

MetricsSnapshot
MetricsRegistry::snapshot() const
{
    std::lock_guard<std::mutex> lock(mutex_);

    // Merge all shards once into a flat slot image.
    std::vector<uint64_t> merged(nextSlot_, 0);
    std::vector<double> merged_sums(nextSlot_, 0.0);
    for (const auto &shard : shards_) {
        for (size_t i = 0; i < nextSlot_; ++i) {
            const uint64_t raw =
                shard->slots[i].load(std::memory_order_relaxed);
            merged[i] += raw;
            merged_sums[i] += std::bit_cast<double>(raw);
        }
    }

    MetricsSnapshot out;
    out.metrics.reserve(metrics_.size());
    for (const MetricInfo &info : metrics_) {
        MetricValue value;
        value.name = info.name;
        value.help = info.help;
        value.labels = info.labels;
        value.kind = info.kind;
        switch (info.kind) {
          case MetricKind::Counter:
            value.count = merged[info.slot];
            value.value = static_cast<double>(merged[info.slot]);
            break;
          case MetricKind::Gauge:
            value.value = std::bit_cast<double>(
                gauges_[info.slot]->load(std::memory_order_relaxed));
            break;
          case MetricKind::Histogram: {
            const std::vector<double> &bounds = *info.bounds;
            value.histogram.upperBounds = bounds;
            value.histogram.bucketCounts.resize(bounds.size() + 1);
            for (size_t b = 0; b <= bounds.size(); ++b)
                value.histogram.bucketCounts[b] = merged[info.slot + b];
            value.histogram.count = merged[info.slot + bounds.size() + 1];
            value.histogram.sum = merged_sums[info.slot + bounds.size() + 2];
            value.count = value.histogram.count;
            break;
          }
        }
        out.metrics.push_back(std::move(value));
    }

    std::sort(out.metrics.begin(), out.metrics.end(),
              [](const MetricValue &a, const MetricValue &b) {
                  if (a.name != b.name)
                      return a.name < b.name;
                  return metricKey(a.name, a.labels) <
                      metricKey(b.name, b.labels);
              });
    return out;
}

void
MetricsRegistry::reset()
{
    std::lock_guard<std::mutex> lock(mutex_);
    for (const auto &shard : shards_) {
        for (auto &slot : shard->slots)
            slot.store(0, std::memory_order_relaxed);
    }
    for (const auto &gauge : gauges_)
        gauge->store(std::bit_cast<uint64_t>(0.0),
                     std::memory_order_relaxed);
}

MetricsRegistry &
globalMetrics()
{
    static MetricsRegistry registry;
    return registry;
}

} // namespace autofsm::obs
