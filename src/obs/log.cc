#include "obs/log.hh"

#include <chrono>
#include <iostream>
#include <sstream>

#include "obs/trace_context.hh"
#include "support/json.hh"

namespace autofsm::obs
{

namespace
{

int64_t
epochMillisNow()
{
    return std::chrono::duration_cast<std::chrono::milliseconds>(
               std::chrono::system_clock::now().time_since_epoch())
        .count();
}

int64_t
steadyMillisNow()
{
    return std::chrono::duration_cast<std::chrono::milliseconds>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

} // anonymous namespace

const char *
logLevelName(LogLevel level)
{
    switch (level) {
      case LogLevel::Debug: return "debug";
      case LogLevel::Info: return "info";
      case LogLevel::Warn: return "warn";
      case LogLevel::Error: return "error";
    }
    return "?";
}

void
Logger::setSink(std::ostream *sink)
{
    std::lock_guard<std::mutex> lock(mutex_);
    sink_ = sink;
}

void
Logger::setMinLevel(LogLevel level)
{
    std::lock_guard<std::mutex> lock(mutex_);
    minLevel_ = level;
}

void
Logger::setRateLimitPerSecond(uint32_t maxLines)
{
    std::lock_guard<std::mutex> lock(mutex_);
    rateLimitPerSecond_ = maxLines;
}

void
Logger::log(LogLevel level, std::string_view site,
            std::string_view message,
            std::initializer_list<LogField> fields)
{
#ifdef AUTOFSM_NO_TELEMETRY
    (void)level;
    (void)site;
    (void)message;
    (void)fields;
#else
    // Correlation is read off this thread before taking the lock.
    const TraceContext *context = currentTraceContext();

    std::lock_guard<std::mutex> lock(mutex_);
    if (level < minLevel_)
        return;

    uint64_t suppressed_note = 0;
    if (rateLimitPerSecond_ > 0 && level != LogLevel::Error) {
        SiteState &state = sites_[std::string(site)];
        const int64_t now = steadyMillisNow();
        if (now - state.windowStartMillis >= 1000) {
            state.windowStartMillis = now;
            state.linesThisWindow = 0;
        }
        if (state.linesThisWindow >= rateLimitPerSecond_) {
            ++state.pendingSuppressed;
            ++suppressed_;
            return;
        }
        ++state.linesThisWindow;
        suppressed_note = state.pendingSuppressed;
        state.pendingSuppressed = 0;
    }

    std::ostringstream line;
    JsonWriter json(line);
    json.beginObject();
    json.key("ts").value(epochMillisNow());
    json.key("level").value(logLevelName(level));
    json.key("site").value(site);
    json.key("msg").value(message);
    if (context != nullptr) {
        json.key("requestId").value(context->requestId);
        if (!context->tenant.empty())
            json.key("tenant").value(context->tenant);
        if (!context->requestClass.empty())
            json.key("class").value(context->requestClass);
    }
    for (const LogField &field : fields) {
        json.key(field.key_);
        switch (field.kind_) {
          case LogField::Kind::Text: json.value(field.text_); break;
          case LogField::Kind::Int: json.value(field.int_); break;
          case LogField::Kind::Uint: json.value(field.uint_); break;
          case LogField::Kind::Real: json.value(field.real_); break;
          case LogField::Kind::Flag: json.value(field.flag_); break;
        }
    }
    if (suppressed_note > 0)
        json.key("suppressed").value(suppressed_note);
    json.endObject();

    std::ostream &out = sink_ != nullptr ? *sink_ : std::cerr;
    out << line.str() << '\n';
    out.flush();
#endif
}

uint64_t
Logger::suppressedLines() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return suppressed_;
}

Logger &
globalLogger()
{
    static Logger logger;
    return logger;
}

void
logDebug(std::string_view site, std::string_view message,
         std::initializer_list<LogField> fields)
{
    globalLogger().log(LogLevel::Debug, site, message, fields);
}

void
logInfo(std::string_view site, std::string_view message,
        std::initializer_list<LogField> fields)
{
    globalLogger().log(LogLevel::Info, site, message, fields);
}

void
logWarn(std::string_view site, std::string_view message,
        std::initializer_list<LogField> fields)
{
    globalLogger().log(LogLevel::Warn, site, message, fields);
}

void
logError(std::string_view site, std::string_view message,
         std::initializer_list<LogField> fields)
{
    globalLogger().log(LogLevel::Error, site, message, fields);
}

std::string
buildInfo()
{
    std::string info;
#ifdef NDEBUG
    info = "release";
#else
    info = "debug";
#endif
#ifdef AUTOFSM_NO_TELEMETRY
    info += " no-telemetry";
#endif
#ifdef __VERSION__
    info += " ";
    info += __VERSION__;
#endif
    return info;
}

} // namespace autofsm::obs
