#include "obs/trace_context.hh"

#include <sstream>
#include <utility>

#include "support/json.hh"

namespace autofsm::obs
{

namespace
{

thread_local const TraceContext *t_current_context = nullptr;

} // anonymous namespace

TraceContextScope::TraceContextScope(const TraceContext &context)
    : context_(context), previous_(t_current_context)
{
    t_current_context = context_.active() ? &context_ : nullptr;
}

TraceContextScope::~TraceContextScope()
{
    t_current_context = previous_;
}

const TraceContext *
currentTraceContext()
{
    return t_current_context;
}

void
SlowRequestRing::add(SlowRequestCapture capture)
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (capacity_ == 0) {
        ++dropped_;
        return;
    }
    while (entries_.size() >= capacity_) {
        entries_.pop_front();
        ++dropped_;
    }
    entries_.push_back(std::move(capture));
}

std::vector<SlowRequestCapture>
SlowRequestRing::snapshot() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return {entries_.begin(), entries_.end()};
}

uint64_t
SlowRequestRing::dropped() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return dropped_;
}

std::string
slowRequestsToJson(const std::vector<SlowRequestCapture> &captures,
                   size_t capacity, uint64_t dropped)
{
    std::ostringstream out;
    JsonWriter json(out);
    json.beginObject();
    json.key("slowRequests").beginArray();
    for (const SlowRequestCapture &capture : captures) {
        json.beginObject();
        json.key("id").value(capture.requestId);
        json.key("tenant").value(capture.tenant);
        json.key("class").value(capture.requestClass);
        json.key("outcome").value(capture.outcome);
        json.key("totalMillis").value(capture.totalMillis);
        json.key("queueMillis").value(capture.queueMillis);
        json.key("deadlineMillis").value(capture.deadlineMillis);
        json.key("degraded").value(capture.degraded);
        json.key("fallbacks").beginArray();
        for (const std::string &fallback : capture.fallbacks)
            json.value(fallback);
        json.endArray();
        if (!capture.errorKind.empty() || !capture.errorStage.empty()) {
            json.key("error").beginObject();
            json.key("stage").value(capture.errorStage);
            json.key("kind").value(capture.errorKind);
            json.key("detail").value(capture.errorDetail);
            json.endObject();
        }
        json.key("spans").beginArray();
        for (const SpanRecord &span : capture.spans) {
            json.beginObject();
            json.key("id").value(span.id);
            json.key("parent").value(span.parent);
            json.key("name").value(span.name);
            json.key("startMillis").value(span.startMillis);
            json.key("millis").value(span.durationMillis);
            json.key("thread").value(span.thread);
            json.endObject();
        }
        json.endArray();
        json.endObject();
    }
    json.endArray();
    json.key("capacity").value(static_cast<uint64_t>(capacity));
    json.key("dropped").value(dropped);
    json.endObject();
    return out.str();
}

} // namespace autofsm::obs
