/**
 * @file
 * Process-wide metrics registry: counters, gauges and fixed-bucket
 * histograms with Prometheus-style names and labels.
 *
 * Design goals, in order:
 *
 *  - **Cheap hot path.** Counter/histogram writes land in a per-thread
 *    shard, so an increment is one relaxed atomic add on a cache line no
 *    other thread writes (the atomic only orders the snapshot reader;
 *    there is never write contention). `snapshot()` merges the shards.
 *  - **Zero when off.** A disabled registry short-circuits before
 *    touching thread-local state, and compiling with
 *    `-DAUTOFSM_NO_TELEMETRY` removes the instrumentation entirely
 *    (handles become inert, empty structs drive no code).
 *  - **Determinism.** Snapshots are sorted by (name, labels) and the
 *    exporters (obs/export.hh) format them with the same fixed rules as
 *    the rest of the repo's JSON, so equal totals yield equal bytes.
 *
 * Handles (`Counter`, `Gauge`, `Histogram`) are small value types that
 * stay valid for the registry's lifetime; registering the same
 * (name, labels) twice returns a handle to the same metric.
 */

#ifndef AUTOFSM_OBS_METRICS_HH
#define AUTOFSM_OBS_METRICS_HH

#include <atomic>
#include <bit>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <utility>
#include <vector>

namespace autofsm::obs
{

/** Label key/value pairs attached to one metric instance. */
using Labels = std::vector<std::pair<std::string, std::string>>;

enum class MetricKind
{
    Counter,
    Gauge,
    Histogram,
};

/** Stable lower-case name of @p kind ("counter", "gauge", "histogram"). */
const char *metricKindName(MetricKind kind);

/** Point-in-time value of one histogram. */
struct HistogramValue
{
    /** Finite bucket upper bounds, ascending; an implicit +Inf bucket
     *  follows the last bound. */
    std::vector<double> upperBounds;
    /** Per-bucket (non-cumulative) counts; size upperBounds.size() + 1,
     *  the last entry being the +Inf overflow bucket. */
    std::vector<uint64_t> bucketCounts;
    uint64_t count = 0;
    double sum = 0.0;
};

/** Point-in-time value of one metric instance. */
struct MetricValue
{
    std::string name;
    std::string help;
    Labels labels;
    MetricKind kind = MetricKind::Counter;
    /** Counter total (exact). */
    uint64_t count = 0;
    /** Gauge value. */
    double value = 0.0;
    /** Histogram state (kind == Histogram only). */
    HistogramValue histogram;
};

/** A merged, deterministic view of every registered metric. */
struct MetricsSnapshot
{
    /** Sorted by (name, rendered labels). */
    std::vector<MetricValue> metrics;
};

class MetricsRegistry;

/** Monotone counter handle. Value type; default-constructed is inert. */
class Counter
{
  public:
    Counter() = default;

    /** Add @p n; a single relaxed add on this thread's shard. */
    inline void inc(uint64_t n = 1);

  private:
    friend class MetricsRegistry;
    Counter(MetricsRegistry *registry, uint32_t slot)
        : registry_(registry), slot_(slot)
    {
    }

    MetricsRegistry *registry_ = nullptr;
    uint32_t slot_ = 0;
};

/** Last-write-wins gauge handle. */
class Gauge
{
  public:
    Gauge() = default;

    inline void set(double value);

    /** Atomic add (CAS loop; gauges are not hot-path). */
    inline void add(double delta);

  private:
    friend class MetricsRegistry;
    Gauge(MetricsRegistry *registry, std::atomic<uint64_t> *cell)
        : registry_(registry), cell_(cell)
    {
    }

    MetricsRegistry *registry_ = nullptr;
    std::atomic<uint64_t> *cell_ = nullptr;
};

/** Fixed-bucket histogram handle. */
class Histogram
{
  public:
    Histogram() = default;

    /** Record one observation (bucket count + count + sum). */
    inline void observe(double value);

  private:
    friend class MetricsRegistry;
    Histogram(MetricsRegistry *registry, uint32_t slot,
              std::shared_ptr<const std::vector<double>> bounds)
        : registry_(registry), slot_(slot), bounds_(std::move(bounds))
    {
    }

    MetricsRegistry *registry_ = nullptr;
    /** First bucket slot; layout: buckets..., +Inf bucket, count, sum. */
    uint32_t slot_ = 0;
    std::shared_ptr<const std::vector<double>> bounds_;
};

/**
 * The registry proper. One global instance (globalMetrics()) serves the
 * whole process; tests may create private instances freely.
 *
 * Thread-safety: registration and snapshot take a mutex; handle writes
 * are lock-free (per-thread shards). A snapshot taken while writers run
 * is internally consistent per metric (each slot is an atomic read) and
 * never observes more than has been written.
 */
class MetricsRegistry
{
  public:
    /** Scalar slots available per shard; registrations beyond this throw. */
    static constexpr size_t kShardSlots = 4096;

    MetricsRegistry();
    ~MetricsRegistry();

    MetricsRegistry(const MetricsRegistry &) = delete;
    MetricsRegistry &operator=(const MetricsRegistry &) = delete;

    /** Runtime switch; a disabled registry makes every write a no-op. */
    void enable(bool on) { enabled_.store(on, std::memory_order_relaxed); }

    bool
    enabled() const
    {
#ifdef AUTOFSM_NO_TELEMETRY
        return false;
#else
        return enabled_.load(std::memory_order_relaxed);
#endif
    }

    /**
     * Register (or look up) a counter. Re-registering the same
     * (name, labels) returns a handle to the same metric; registering it
     * with a different kind throws std::invalid_argument.
     */
    Counter counter(std::string_view name, std::string_view help = {},
                    Labels labels = {});

    /** Register (or look up) a gauge. */
    Gauge gauge(std::string_view name, std::string_view help = {},
                Labels labels = {});

    /**
     * Register (or look up) a histogram over the given finite bucket
     * upper bounds (ascending; an +Inf bucket is appended implicitly).
     * Re-registering with different bounds throws.
     */
    Histogram histogram(std::string_view name, std::string_view help,
                        std::vector<double> upperBounds, Labels labels = {});

    /** Merge every shard into a deterministic, sorted snapshot. */
    MetricsSnapshot snapshot() const;

    /** Zero every value (registrations stay). For tests and benches. */
    void reset();

  private:
    friend class Counter;
    friend class Gauge;
    friend class Histogram;

    struct Shard
    {
        explicit Shard(size_t slots) : slots(slots) {}
        /** Written only by the owning thread; read by snapshot(). */
        std::vector<std::atomic<uint64_t>> slots;
    };

    struct MetricInfo
    {
        std::string name;
        std::string help;
        Labels labels;
        MetricKind kind = MetricKind::Counter;
        /** First shard slot (counter/histogram) or gauge cell index. */
        uint32_t slot = 0;
        std::shared_ptr<const std::vector<double>> bounds;
    };

    /** Fields a handle needs, copied out of MetricInfo while mutex_ is
     *  held — returning a reference into metrics_ would dangle as soon
     *  as a concurrent registration grows the vector. */
    struct RegisteredMetric
    {
        uint32_t slot = 0;
        std::atomic<uint64_t> *gaugeCell = nullptr;
        std::shared_ptr<const std::vector<double>> bounds;
    };

    /** This thread's shard for this registry (created on first use). */
    Shard *shardForThread();

    RegisteredMetric registerMetric(std::string_view name,
                                    std::string_view help, Labels labels,
                                    MetricKind kind, size_t slots,
                                    std::vector<double> bounds);

    std::atomic<bool> enabled_{true};
    const uint64_t id_;

    mutable std::mutex mutex_;
    std::vector<MetricInfo> metrics_;
    std::unordered_map<std::string, size_t> byKey_;
    size_t nextSlot_ = 0;
    std::vector<std::shared_ptr<Shard>> shards_;
    /** Gauge cells; pointers stay stable across growth (unique_ptr). */
    std::vector<std::unique_ptr<std::atomic<uint64_t>>> gauges_;
};

/** The process-wide registry every subsystem reports into. */
MetricsRegistry &globalMetrics();

/**
 * The shared latency bucket ladder (milliseconds) used by every
 * duration histogram in the repo, so exported timings line up across
 * subsystems.
 */
inline std::vector<double>
defaultLatencyBucketsMillis()
{
    return {0.01, 0.025, 0.05, 0.1,  0.25, 0.5,  1.0,    2.5,
            5.0,  10.0,  25.0, 50.0, 100.0, 250.0, 1000.0, 5000.0};
}

/**
 * The request-level bucket ladder (seconds), Prometheus-convention
 * units for the serve SLO histograms (`*_seconds` families). Spans the
 * sub-millisecond fast path out to the bulk-class tail.
 */
inline std::vector<double>
defaultLatencyBucketsSeconds()
{
    return {0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
            0.1,    0.25,  0.5,    1.0,   2.5,  5.0,   15.0};
}

// --- hot-path implementations ------------------------------------------

inline void
Counter::inc(uint64_t n)
{
#ifdef AUTOFSM_NO_TELEMETRY
    (void)n;
#else
    if (registry_ == nullptr || !registry_->enabled())
        return;
    MetricsRegistry::Shard *shard = registry_->shardForThread();
    shard->slots[slot_].fetch_add(n, std::memory_order_relaxed);
#endif
}

inline void
Gauge::set(double value)
{
#ifdef AUTOFSM_NO_TELEMETRY
    (void)value;
#else
    if (registry_ == nullptr || !registry_->enabled())
        return;
    cell_->store(std::bit_cast<uint64_t>(value),
                 std::memory_order_relaxed);
#endif
}

inline void
Gauge::add(double delta)
{
#ifdef AUTOFSM_NO_TELEMETRY
    (void)delta;
#else
    if (registry_ == nullptr || !registry_->enabled())
        return;
    uint64_t bits = cell_->load(std::memory_order_relaxed);
    while (!cell_->compare_exchange_weak(
        bits, std::bit_cast<uint64_t>(std::bit_cast<double>(bits) + delta),
        std::memory_order_relaxed)) {
    }
#endif
}

inline void
Histogram::observe(double value)
{
#ifdef AUTOFSM_NO_TELEMETRY
    (void)value;
#else
    if (registry_ == nullptr || !registry_->enabled())
        return;
    MetricsRegistry::Shard *shard = registry_->shardForThread();
    const std::vector<double> &bounds = *bounds_;
    size_t bucket = 0;
    while (bucket < bounds.size() && value > bounds[bucket])
        ++bucket;
    shard->slots[slot_ + bucket].fetch_add(1, std::memory_order_relaxed);
    const uint32_t count_slot =
        slot_ + static_cast<uint32_t>(bounds.size()) + 1;
    shard->slots[count_slot].fetch_add(1, std::memory_order_relaxed);
    // The sum slot holds a bit-cast double. The shard is single-writer
    // (it belongs to this thread), so a plain load+store cannot lose
    // updates; the atomic only serves the concurrent snapshot reader.
    std::atomic<uint64_t> &sum = shard->slots[count_slot + 1];
    const double old =
        std::bit_cast<double>(sum.load(std::memory_order_relaxed));
    sum.store(std::bit_cast<uint64_t>(old + value),
              std::memory_order_relaxed);
#endif
}

} // namespace autofsm::obs

#endif // AUTOFSM_OBS_METRICS_HH
