/**
 * @file
 * Request-scoped trace propagation and the slow-request capture ring.
 *
 * A `TraceContext` is minted once per admitted serve request (request
 * id, tenant, class, the sampling decision and the id of the request's
 * root span) and rides on the request through the dispatcher into the
 * batch engine. Worker threads bind it with a `TraceContextScope`
 * before running the item, so everything the flow does on that thread —
 * spans, log lines — can correlate back to the owning request even when
 * requests are coalesced into shared batches and fanned across the
 * pool.
 *
 * Sampling policy: a request is sampled when it opted in
 * (`DesignRequest::trace`) or when the daemon's slow-request ring is
 * armed — a slow request is only identified after it finished, so its
 * spans must already have been recorded. Unsampled requests open no
 * root span and their stray spans are discarded at drain time.
 *
 * The `SlowRequestRing` retains the last N requests that blew a
 * configurable fraction of their class deadline: the full span tree
 * plus the budget/degradation state, scrapable over the daemon's debug
 * frame. Fixed capacity, oldest evicted first.
 */

#ifndef AUTOFSM_OBS_TRACE_CONTEXT_HH
#define AUTOFSM_OBS_TRACE_CONTEXT_HH

#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <vector>

#include "obs/span.hh"

namespace autofsm::obs
{

/** Per-request observability identity, minted at admission. */
struct TraceContext
{
    /** DesignRequest::id of the owning request. */
    uint64_t requestId = 0;
    std::string tenant;
    /** requestClassName of the admission class ("interactive", ...). */
    std::string requestClass;
    /** Record spans for this request (opt-in trace or slow-ring armed). */
    bool sampled = false;
    /** The request's root span (Tracer::openSpan), 0 when unsampled. */
    uint64_t rootSpan = 0;

    /** A default-constructed context carries nothing and binds nothing. */
    bool
    active() const
    {
        return sampled || requestId != 0 || !tenant.empty();
    }
};

/**
 * Bind @p context as the calling thread's current trace context, RAII.
 * An inactive context clears the binding instead (work between requests
 * must not inherit the previous request's identity).
 */
class TraceContextScope
{
  public:
    explicit TraceContextScope(const TraceContext &context);
    ~TraceContextScope();

    TraceContextScope(const TraceContextScope &) = delete;
    TraceContextScope &operator=(const TraceContextScope &) = delete;

  private:
    TraceContext context_;
    const TraceContext *previous_ = nullptr;
};

/** The calling thread's bound context, or nullptr outside any request. */
const TraceContext *currentTraceContext();

/** One retained slow request: identity, timing, degradation, spans. */
struct SlowRequestCapture
{
    uint64_t requestId = 0;
    std::string tenant;
    std::string requestClass;
    /** "ok" / "degraded" / "error" — the response's outcome. */
    std::string outcome;
    /** Admission-to-response wall clock, milliseconds. */
    double totalMillis = 0.0;
    /** Of which: waiting in the admission queue, milliseconds. */
    double queueMillis = 0.0;
    /** The effective deadline the request ran under (0 = unlimited). */
    double deadlineMillis = 0.0;
    bool degraded = false;
    /** Fallback chain, "stage:kind" in execution order. */
    std::vector<std::string> fallbacks;
    /** The classified failure when outcome == "error". */
    std::string errorStage;
    std::string errorKind;
    std::string errorDetail;
    /** The request's span tree (empty when telemetry is compiled out). */
    std::vector<SpanRecord> spans;
};

/** Fixed-capacity ring of slow-request captures, oldest evicted. */
class SlowRequestRing
{
  public:
    explicit SlowRequestRing(size_t capacity) : capacity_(capacity) {}

    SlowRequestRing(const SlowRequestRing &) = delete;
    SlowRequestRing &operator=(const SlowRequestRing &) = delete;

    void add(SlowRequestCapture capture);

    /** Retained captures, oldest first. */
    std::vector<SlowRequestCapture> snapshot() const;

    size_t capacity() const { return capacity_; }

    /** Captures evicted (or refused, capacity 0) so far. */
    uint64_t dropped() const;

  private:
    const size_t capacity_;
    mutable std::mutex mutex_;
    std::deque<SlowRequestCapture> entries_;
    uint64_t dropped_ = 0;
};

/**
 * Render the debug-frame payload: {"slowRequests":[...], "capacity":N,
 * "dropped":N}, each capture with its flat span list (ids + parents, so
 * connectivity is checkable). Deterministic JsonWriter bytes.
 */
std::string slowRequestsToJson(
    const std::vector<SlowRequestCapture> &captures, size_t capacity,
    uint64_t dropped);

} // namespace autofsm::obs

#endif // AUTOFSM_OBS_TRACE_CONTEXT_HH
