/**
 * @file
 * Structured JSON-lines logging.
 *
 * One log line is one strict-JSON object on one line:
 *
 *     {"ts":1754650000123,"level":"warn","site":"serve.frame",
 *      "msg":"...","requestId":7,"tenant":"smoke",...}
 *
 * Fields, in order: epoch-milliseconds timestamp, level, the emitting
 * site (a stable dotted identifier like "serve.accept" — the unit of
 * rate limiting), the human message, then request correlation pulled
 * from the thread's `currentTraceContext()` (requestId / tenant /
 * class, present whenever a request context is bound), then any
 * caller-supplied typed fields, and finally a "suppressed" count when
 * the site's rate limiter dropped lines since the previous emission.
 *
 * Rate limiting is per site over one-second windows: at most
 * `rateLimitPerSecond` lines per site per window; excess lines are
 * counted, not written, and the count is attached to the next line that
 * does get through. Errors are never suppressed.
 *
 * The default sink is stderr (stdout stays reserved for program
 * output, e.g. the daemon's "listening on" line). Tests inject an
 * ostringstream. With `-DAUTOFSM_NO_TELEMETRY` logging compiles to
 * no-ops like the rest of the obs layer.
 */

#ifndef AUTOFSM_OBS_LOG_HH
#define AUTOFSM_OBS_LOG_HH

#include <cstdint>
#include <initializer_list>
#include <iosfwd>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>

namespace autofsm::obs
{

enum class LogLevel
{
    Debug = 0,
    Info = 1,
    Warn = 2,
    Error = 3,
};

/** Stable lower-case name of @p level ("debug", ...). */
const char *logLevelName(LogLevel level);

/** One typed key/value pair attached to a log line. */
class LogField
{
  public:
    LogField(std::string key, std::string value)
        : key_(std::move(key)), kind_(Kind::Text),
          text_(std::move(value))
    {
    }
    LogField(std::string key, const char *value)
        : LogField(std::move(key), std::string(value))
    {
    }
    LogField(std::string key, int64_t value)
        : key_(std::move(key)), kind_(Kind::Int), int_(value)
    {
    }
    LogField(std::string key, int value)
        : LogField(std::move(key), int64_t{value})
    {
    }
    LogField(std::string key, uint64_t value)
        : key_(std::move(key)), kind_(Kind::Uint), uint_(value)
    {
    }
    LogField(std::string key, unsigned value)
        : LogField(std::move(key), uint64_t{value})
    {
    }
    LogField(std::string key, double value)
        : key_(std::move(key)), kind_(Kind::Real), real_(value)
    {
    }
    LogField(std::string key, bool value)
        : key_(std::move(key)), kind_(Kind::Flag), flag_(value)
    {
    }

  private:
    friend class Logger;

    enum class Kind
    {
        Text,
        Int,
        Uint,
        Real,
        Flag,
    };

    std::string key_;
    Kind kind_ = Kind::Text;
    std::string text_;
    int64_t int_ = 0;
    uint64_t uint_ = 0;
    double real_ = 0.0;
    bool flag_ = false;
};

/**
 * The logger proper. One global instance (globalLogger()); tests may
 * create private ones. Thread-safe: composition happens off-lock, the
 * sink write is serialized.
 */
class Logger
{
  public:
    Logger() = default;

    Logger(const Logger &) = delete;
    Logger &operator=(const Logger &) = delete;

    /** Redirect output (nullptr restores the stderr default). */
    void setSink(std::ostream *sink);

    /** Drop lines below @p level (default Info). */
    void setMinLevel(LogLevel level);

    /** Max lines per site per second; 0 disables limiting (default 50). */
    void setRateLimitPerSecond(uint32_t maxLines);

    void log(LogLevel level, std::string_view site,
             std::string_view message,
             std::initializer_list<LogField> fields = {});

    /** Total lines dropped by the per-site rate limiter so far. */
    uint64_t suppressedLines() const;

  private:
    struct SiteState
    {
        int64_t windowStartMillis = 0;
        uint32_t linesThisWindow = 0;
        uint64_t pendingSuppressed = 0;
    };

    mutable std::mutex mutex_;
    std::ostream *sink_ = nullptr;
    LogLevel minLevel_ = LogLevel::Info;
    uint32_t rateLimitPerSecond_ = 50;
    std::unordered_map<std::string, SiteState> sites_;
    uint64_t suppressed_ = 0;
};

/** The process-wide logger every subsystem reports into. */
Logger &globalLogger();

/** @name Convenience wrappers over globalLogger(). */
/// @{
void logDebug(std::string_view site, std::string_view message,
              std::initializer_list<LogField> fields = {});
void logInfo(std::string_view site, std::string_view message,
             std::initializer_list<LogField> fields = {});
void logWarn(std::string_view site, std::string_view message,
             std::initializer_list<LogField> fields = {});
void logError(std::string_view site, std::string_view message,
              std::initializer_list<LogField> fields = {});
/// @}

/** Compact build description for startup lines ("release g++ 13.2"). */
std::string buildInfo();

} // namespace autofsm::obs

#endif // AUTOFSM_OBS_LOG_HH
