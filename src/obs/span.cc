#include "obs/span.hh"

#include <algorithm>
#include <unordered_map>

namespace autofsm::obs
{

namespace
{

std::atomic<uint64_t> next_tracer_id{1};

} // anonymous namespace

Tracer::Tracer()
    : id_(next_tracer_id.fetch_add(1, std::memory_order_relaxed)),
      epoch_(std::chrono::steady_clock::now())
{
}

Tracer::~Tracer() = default;

Tracer::ThreadState &
Tracer::stateForThread() const
{
    thread_local std::unordered_map<uint64_t,
                                    std::unique_ptr<ThreadState>>
        state_of_thread;
    std::unique_ptr<ThreadState> &entry = state_of_thread[id_];
    if (!entry) {
        entry = std::make_unique<ThreadState>();
        entry->buffer = std::make_shared<Buffer>();
        std::lock_guard<std::mutex> lock(mutex_);
        buffers_.push_back(entry->buffer);
    }
    return *entry;
}

double
Tracer::millisSinceEpoch() const
{
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - epoch_)
        .count();
}

uint64_t
Tracer::currentSpan() const
{
    const ThreadState &state = stateForThread();
    return state.stack.empty() ? 0 : state.stack.back();
}

std::vector<SpanRecord>
Tracer::snapshot() const
{
    std::vector<SpanRecord> out;
    std::lock_guard<std::mutex> lock(mutex_);
    for (const auto &buffer : buffers_) {
        std::lock_guard<std::mutex> buffer_lock(buffer->mutex);
        out.insert(out.end(), buffer->records.begin(),
                   buffer->records.end());
    }
    std::sort(out.begin(), out.end(),
              [](const SpanRecord &a, const SpanRecord &b) {
                  return a.id < b.id;
              });
    return out;
}

void
Tracer::clear()
{
    std::lock_guard<std::mutex> lock(mutex_);
    for (const auto &buffer : buffers_) {
        std::lock_guard<std::mutex> buffer_lock(buffer->mutex);
        buffer->records.clear();
    }
}

SpanScope::SpanScope(Tracer *tracer, std::string_view name)
{
    start(tracer, name, 0, true);
}

SpanScope::SpanScope(Tracer *tracer, std::string_view name, uint64_t parent)
{
    start(tracer, name, parent, false);
}

void
SpanScope::start(Tracer *tracer, std::string_view name, uint64_t parent,
                 bool parent_from_stack)
{
    start_ = std::chrono::steady_clock::now();
#ifdef AUTOFSM_NO_TELEMETRY
    (void)tracer;
    (void)name;
    (void)parent;
    (void)parent_from_stack;
#else
    if (tracer == nullptr || !tracer->enabled())
        return;
    tracer_ = tracer;
    name_ = std::string(name);
    recording_ = true;
    Tracer::ThreadState &state = tracer->stateForThread();
    parent_ = parent_from_stack
        ? (state.stack.empty() ? 0 : state.stack.back())
        : parent;
    id_ = tracer->nextSpanId_.fetch_add(1, std::memory_order_relaxed);
    startMillis_ = tracer->millisSinceEpoch();
    state.stack.push_back(id_);
#endif
}

SpanScope::~SpanScope() { finishMillis(); }

double
SpanScope::finishMillis()
{
    if (finished_)
        return duration_;
    finished_ = true;
    duration_ = std::chrono::duration<double, std::milli>(
                    std::chrono::steady_clock::now() - start_)
                    .count();
    if (recording_) {
        Tracer::ThreadState &state = tracer_->stateForThread();
        // Pop this span; tolerate out-of-order destruction defensively.
        if (!state.stack.empty() && state.stack.back() == id_)
            state.stack.pop_back();
        SpanRecord record;
        record.id = id_;
        record.parent = parent_;
        record.name = name_;
        record.startMillis = startMillis_;
        record.durationMillis = duration_;
        std::lock_guard<std::mutex> lock(state.buffer->mutex);
        state.buffer->records.push_back(std::move(record));
    }
    return duration_;
}

Tracer &
globalTracer()
{
    static Tracer tracer;
    return tracer;
}

} // namespace autofsm::obs
