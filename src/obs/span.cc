#include "obs/span.hh"

#include <algorithm>
#include <unordered_map>
#include <utility>

namespace autofsm::obs
{

namespace
{

std::atomic<uint64_t> next_tracer_id{1};

thread_local Tracer *t_bound_tracer = nullptr;

} // anonymous namespace

Tracer::Tracer()
    : id_(next_tracer_id.fetch_add(1, std::memory_order_relaxed)),
      epoch_(std::chrono::steady_clock::now())
{
}

Tracer::~Tracer() = default;

Tracer::ThreadState &
Tracer::stateForThread() const
{
    thread_local std::unordered_map<uint64_t,
                                    std::unique_ptr<ThreadState>>
        state_of_thread;
    std::unique_ptr<ThreadState> &entry = state_of_thread[id_];
    if (!entry) {
        entry = std::make_unique<ThreadState>();
        entry->buffer = std::make_shared<Buffer>();
        std::lock_guard<std::mutex> lock(mutex_);
        entry->ordinal = static_cast<uint32_t>(buffers_.size());
        buffers_.push_back(entry->buffer);
    }
    return *entry;
}

double
Tracer::millisSinceEpoch() const
{
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - epoch_)
        .count();
}

uint64_t
Tracer::currentSpan() const
{
    const ThreadState &state = stateForThread();
    return state.stack.empty() ? 0 : state.stack.back();
}

uint64_t
Tracer::openSpan(std::string_view name, uint64_t parent)
{
    if (!enabled())
        return 0;
    // Resolve this thread's state before taking mutex_: creating the
    // state on first use locks mutex_ itself.
    const ThreadState &state = stateForThread();
    OpenSpan span;
    span.name = std::string(name);
    span.parent = parent;
    span.start = std::chrono::steady_clock::now();
    span.startMillis = millisSinceEpoch();
    span.thread = state.ordinal;
    const uint64_t id =
        nextSpanId_.fetch_add(1, std::memory_order_relaxed);
    std::lock_guard<std::mutex> lock(mutex_);
    open_.emplace(id, std::move(span));
    return id;
}

void
Tracer::closeSpan(uint64_t id)
{
    if (id == 0)
        return;
    OpenSpan span;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        const auto it = open_.find(id);
        if (it == open_.end())
            return;
        span = std::move(it->second);
        open_.erase(it);
    }
    SpanRecord record;
    record.id = id;
    record.parent = span.parent;
    record.name = std::move(span.name);
    record.startMillis = span.startMillis;
    record.durationMillis = std::chrono::duration<double, std::milli>(
                                std::chrono::steady_clock::now() -
                                span.start)
                                .count();
    record.thread = span.thread;
    ThreadState &state = stateForThread();
    std::lock_guard<std::mutex> lock(state.buffer->mutex);
    state.buffer->records.push_back(std::move(record));
}

std::vector<SpanRecord>
Tracer::snapshot() const
{
    std::vector<SpanRecord> out;
    std::lock_guard<std::mutex> lock(mutex_);
    for (const auto &buffer : buffers_) {
        std::lock_guard<std::mutex> buffer_lock(buffer->mutex);
        out.insert(out.end(), buffer->records.begin(),
                   buffer->records.end());
    }
    std::sort(out.begin(), out.end(),
              [](const SpanRecord &a, const SpanRecord &b) {
                  return a.id < b.id;
              });
    return out;
}

std::vector<SpanRecord>
Tracer::drain()
{
    std::vector<SpanRecord> out;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        for (const auto &buffer : buffers_) {
            std::lock_guard<std::mutex> buffer_lock(buffer->mutex);
            if (out.empty()) {
                out = std::move(buffer->records);
            } else {
                out.insert(out.end(),
                           std::make_move_iterator(
                               buffer->records.begin()),
                           std::make_move_iterator(buffer->records.end()));
            }
            buffer->records.clear();
        }
    }
    std::sort(out.begin(), out.end(),
              [](const SpanRecord &a, const SpanRecord &b) {
                  return a.id < b.id;
              });
    return out;
}

void
Tracer::clear()
{
    std::lock_guard<std::mutex> lock(mutex_);
    for (const auto &buffer : buffers_) {
        std::lock_guard<std::mutex> buffer_lock(buffer->mutex);
        buffer->records.clear();
    }
}

SpanScope::SpanScope(Tracer *tracer, std::string_view name)
{
    start(tracer, name, 0, true);
}

SpanScope::SpanScope(Tracer *tracer, std::string_view name, uint64_t parent)
{
    start(tracer, name, parent, false);
}

void
SpanScope::start(Tracer *tracer, std::string_view name, uint64_t parent,
                 bool parent_from_stack)
{
    start_ = std::chrono::steady_clock::now();
#ifdef AUTOFSM_NO_TELEMETRY
    (void)tracer;
    (void)name;
    (void)parent;
    (void)parent_from_stack;
#else
    if (tracer == nullptr || !tracer->enabled())
        return;
    tracer_ = tracer;
    name_ = std::string(name);
    recording_ = true;
    Tracer::ThreadState &state = tracer->stateForThread();
    parent_ = parent_from_stack
        ? (state.stack.empty() ? 0 : state.stack.back())
        : parent;
    id_ = tracer->nextSpanId_.fetch_add(1, std::memory_order_relaxed);
    startMillis_ = tracer->millisSinceEpoch();
    state.stack.push_back(id_);
#endif
}

SpanScope::~SpanScope() { finishMillis(); }

double
SpanScope::finishMillis()
{
    if (finished_)
        return duration_;
    finished_ = true;
    duration_ = std::chrono::duration<double, std::milli>(
                    std::chrono::steady_clock::now() - start_)
                    .count();
    if (recording_) {
        Tracer::ThreadState &state = tracer_->stateForThread();
        // Pop this span; tolerate out-of-order destruction defensively.
        if (!state.stack.empty() && state.stack.back() == id_)
            state.stack.pop_back();
        SpanRecord record;
        record.id = id_;
        record.parent = parent_;
        record.name = name_;
        record.startMillis = startMillis_;
        record.durationMillis = duration_;
        record.thread = state.ordinal;
        std::lock_guard<std::mutex> lock(state.buffer->mutex);
        state.buffer->records.push_back(std::move(record));
    }
    return duration_;
}

Tracer &
globalTracer()
{
    static Tracer tracer;
    return tracer;
}

Tracer *
currentTracer()
{
    return t_bound_tracer != nullptr ? t_bound_tracer : &globalTracer();
}

TracerBinding::TracerBinding(Tracer *tracer) : previous_(t_bound_tracer)
{
    t_bound_tracer = tracer;
}

TracerBinding::~TracerBinding()
{
    t_bound_tracer = previous_;
}

} // namespace autofsm::obs
