/**
 * @file
 * Cache bypass (exclusion) predictors - the Section 2.4 application.
 *
 * Keyed by the missing load's PC, the predictor decides whether the
 * miss should fill the cache. Training signal: when a block is evicted,
 * the PC that filled it learns whether the block was re-referenced
 * (fill was useful) or not (fill was pollution and should have been
 * bypassed). Counter-based and generated-FSM variants share one
 * interface; the driver in bypass_sim runs them against the cache model
 * and also derives the Markov models the FSM design flow consumes.
 */

#ifndef AUTOFSM_CACHE_BYPASS_HH
#define AUTOFSM_CACHE_BYPASS_HH

#include <memory>
#include <vector>

#include "cache/cache.hh"
#include "fsmgen/markov.hh"
#include "fsmgen/predictor_fsm.hh"
#include "support/sud_counter.hh"
#include "trace/value_trace.hh"

namespace autofsm
{

/** Per-load bypass decision interface. */
class BypassPredictor
{
  public:
    virtual ~BypassPredictor() = default;

    /** Should the miss at @p pc skip allocation? */
    virtual bool shouldBypass(uint64_t pc) const = 0;

    /** The fill made by @p pc was useful (reused) or not. */
    virtual void update(uint64_t pc, bool reused) = 0;
};

/** Never bypass: the conventional cache. */
class NeverBypass : public BypassPredictor
{
  public:
    bool shouldBypass(uint64_t) const override { return false; }
    void update(uint64_t, bool) override {}
};

/** Table of SUD counters voting "will be reused". */
class SudBypass : public BypassPredictor
{
  public:
    SudBypass(int log2_entries, const SudConfig &config);

    bool shouldBypass(uint64_t pc) const override;
    void update(uint64_t pc, bool reused) override;

  private:
    size_t indexOf(uint64_t pc) const;

    int log2Entries_;
    std::vector<SudCounter> counters_;
};

/** Table of generated-FSM reuse predictors (shared transition table). */
class FsmBypass : public BypassPredictor
{
  public:
    FsmBypass(int log2_entries, const Dfa &fsm);

    bool shouldBypass(uint64_t pc) const override;
    void update(uint64_t pc, bool reused) override;

  private:
    size_t indexOf(uint64_t pc) const;

    int log2Entries_;
    std::shared_ptr<const FsmTable> table_;
    std::vector<PredictorFsm> machines_;
};

/** Outcome of one bypass simulation run. */
struct BypassSimResult
{
    uint64_t accesses = 0;
    uint64_t misses = 0;
    uint64_t bypasses = 0;

    double
    missRate() const
    {
        return accesses == 0
            ? 0.0
            : static_cast<double>(misses) / static_cast<double>(accesses);
    }
};

/** Runtime policy knobs. */
struct BypassSimOptions
{
    /**
     * Every Nth miss the predictor wants to bypass fills anyway (a
     * sampling fill), keeping the reuse training signal alive - without
     * it a bypass-everything state is absorbing, since bypassed misses
     * never produce eviction feedback. 0 disables sampling.
     */
    int sampleEvery = 16;
};

/**
 * Drive a memory access trace (pc, address in LoadRecord::value)
 * through the cache with @p predictor making fill decisions; eviction
 * outcomes train the predictor.
 */
BypassSimResult simulateBypass(const ValueTrace &accesses,
                               const CacheConfig &config,
                               BypassPredictor &predictor,
                               const BypassSimOptions &options = {});

/**
 * Training pass: per-load-PC reuse streams feed @p model (the
 * Section 4 flow's input for designing an FSM bypass predictor).
 * Mirrors the paper's methodology of profiling *under the baseline
 * policy*: fills are decided by @p baseline (pass NeverBypass for a
 * conventional cache) so the recorded reuse behavior reflects a sane
 * cache, not a thrashing one.
 */
void collectReuseModel(const ValueTrace &accesses, const CacheConfig &config,
                       int log2_entries, MarkovModel &model,
                       BypassPredictor &baseline,
                       const BypassSimOptions &options = {});

} // namespace autofsm

#endif // AUTOFSM_CACHE_BYPASS_HH
