/**
 * @file
 * Set-associative data cache model (substrate for Section 2.4).
 *
 * The paper lists cache management - selective replacement and cache
 * exclusion (Tyson et al. [45], McFarling [25]) - among the FSM
 * predictor applications: a small counter per load decides whether a
 * miss should fill the cache at all. This module provides the cache
 * itself: LRU set-associative, with an optional no-fill (bypass) access
 * mode and an eviction callback that reports whether the victim block
 * was ever re-referenced - the training signal for bypass predictors.
 */

#ifndef AUTOFSM_CACHE_CACHE_HH
#define AUTOFSM_CACHE_CACHE_HH

#include <cstdint>
#include <functional>
#include <vector>

namespace autofsm
{

/** Cache geometry. */
struct CacheConfig
{
    int sets = 128;       ///< power-of-two set count
    int ways = 4;         ///< associativity
    int blockBytes = 32;  ///< power-of-two line size
};

/** Result of one cache access. */
struct CacheAccessResult
{
    bool hit = false;
    /**
     * Set on the first re-reference of a block after its fill: prompt
     * positive evidence that `reusedFillPc`'s fill was useful. (Waiting
     * for the eviction to learn this starves feedback in caches where
     * most fills are being bypassed.)
     */
    bool firstReuse = false;
    /** PC whose fill just proved useful (valid with firstReuse). */
    uint64_t reusedFillPc = 0;
    /** Valid when the access evicted a block. */
    bool evicted = false;
    /** PC that originally filled the evicted block. */
    uint64_t victimFillPc = 0;
    /** Whether the evicted block was referenced again after its fill. */
    bool victimWasReused = false;
};

/** LRU set-associative cache with bypassable fills. */
class SetAssocCache
{
  public:
    explicit SetAssocCache(const CacheConfig &config = {});

    /**
     * Access the byte address @p addr on behalf of the load at @p pc.
     *
     * @param fill_on_miss When false, a miss does not allocate (cache
     *        bypass); hits still refresh LRU.
     */
    CacheAccessResult access(uint64_t pc, uint64_t addr,
                             bool fill_on_miss = true);

    /** @name Aggregate statistics. */
    /// @{
    uint64_t accesses() const { return accesses_; }
    uint64_t misses() const { return misses_; }
    double
    missRate() const
    {
        return accesses_ == 0
            ? 0.0
            : static_cast<double>(misses_) /
                static_cast<double>(accesses_);
    }
    /// @}

    const CacheConfig &config() const { return config_; }

  private:
    struct Block
    {
        bool valid = false;
        uint64_t tag = 0;
        uint64_t fillPc = 0;
        uint64_t lastUse = 0; ///< LRU timestamp
        bool reused = false;  ///< touched again after the fill
    };

    size_t setOf(uint64_t addr) const;
    uint64_t tagOf(uint64_t addr) const;

    CacheConfig config_;
    std::vector<Block> blocks_; ///< sets * ways, row-major by set
    uint64_t clock_ = 0;
    uint64_t accesses_ = 0;
    uint64_t misses_ = 0;
};

} // namespace autofsm

#endif // AUTOFSM_CACHE_CACHE_HH
