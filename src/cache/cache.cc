#include "cache/cache.hh"

#include <cassert>

#include "support/bits.hh"

namespace autofsm
{

SetAssocCache::SetAssocCache(const CacheConfig &config)
    : config_(config),
      blocks_(static_cast<size_t>(config.sets) *
              static_cast<size_t>(config.ways))
{
    assert(config.sets > 0 && (config.sets & (config.sets - 1)) == 0);
    assert(config.ways > 0);
    assert(config.blockBytes > 0 &&
           (config.blockBytes & (config.blockBytes - 1)) == 0);
}

size_t
SetAssocCache::setOf(uint64_t addr) const
{
    const int block_bits = ceilLog2(static_cast<uint32_t>(config_.blockBytes));
    return static_cast<size_t>((addr >> block_bits) &
                               static_cast<uint64_t>(config_.sets - 1));
}

uint64_t
SetAssocCache::tagOf(uint64_t addr) const
{
    const int block_bits = ceilLog2(static_cast<uint32_t>(config_.blockBytes));
    const int set_bits = ceilLog2(static_cast<uint32_t>(config_.sets));
    return addr >> (block_bits + set_bits);
}

CacheAccessResult
SetAssocCache::access(uint64_t pc, uint64_t addr, bool fill_on_miss)
{
    ++accesses_;
    ++clock_;
    CacheAccessResult result;

    Block *base = &blocks_[setOf(addr) * static_cast<size_t>(config_.ways)];
    const uint64_t tag = tagOf(addr);

    // Hit path: refresh LRU, mark reuse.
    for (int w = 0; w < config_.ways; ++w) {
        Block &block = base[w];
        if (block.valid && block.tag == tag) {
            block.lastUse = clock_;
            if (!block.reused) {
                block.reused = true;
                result.firstReuse = true;
                result.reusedFillPc = block.fillPc;
            }
            result.hit = true;
            return result;
        }
    }

    ++misses_;
    if (!fill_on_miss)
        return result; // bypass: no allocation, no eviction

    // Victim selection: invalid way first, else LRU.
    Block *victim = &base[0];
    for (int w = 0; w < config_.ways; ++w) {
        Block &block = base[w];
        if (!block.valid) {
            victim = &block;
            break;
        }
        if (block.lastUse < victim->lastUse)
            victim = &block;
    }

    if (victim->valid) {
        result.evicted = true;
        result.victimFillPc = victim->fillPc;
        result.victimWasReused = victim->reused;
    }

    victim->valid = true;
    victim->tag = tag;
    victim->fillPc = pc;
    victim->lastUse = clock_;
    victim->reused = false;
    return result;
}

} // namespace autofsm
