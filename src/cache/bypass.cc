#include "cache/bypass.hh"

#include <cassert>

#include "support/bits.hh"

namespace autofsm
{

namespace
{

size_t
hashPc(uint64_t pc, int log2_entries)
{
    uint64_t h = (pc >> 2) * 0x9e3779b97f4a7c15ULL;
    h ^= h >> 31;
    return static_cast<size_t>(h & ((1ULL << log2_entries) - 1));
}

} // anonymous namespace

SudBypass::SudBypass(int log2_entries, const SudConfig &config)
    : log2Entries_(log2_entries),
      // Start saturated: a cold load is presumed useful, so the cache
      // behaves conventionally until evidence of pollution accumulates.
      counters_(1ULL << log2_entries, SudCounter(config, config.max))
{
    assert(log2_entries >= 1 && log2_entries <= 20);
}

size_t
SudBypass::indexOf(uint64_t pc) const
{
    return hashPc(pc, log2Entries_);
}

bool
SudBypass::shouldBypass(uint64_t pc) const
{
    // The counter votes "will be reused"; bypass on the complement.
    return !counters_[indexOf(pc)].predict();
}

void
SudBypass::update(uint64_t pc, bool reused)
{
    counters_[indexOf(pc)].update(reused);
}

FsmBypass::FsmBypass(int log2_entries, const Dfa &fsm)
    : log2Entries_(log2_entries),
      table_(std::make_shared<const FsmTable>(fsm))
{
    assert(log2_entries >= 1 && log2_entries <= 20);
    const size_t n = 1ULL << log2_entries;
    machines_.reserve(n);
    for (size_t i = 0; i < n; ++i)
        machines_.emplace_back(table_);
}

size_t
FsmBypass::indexOf(uint64_t pc) const
{
    return hashPc(pc, log2Entries_);
}

bool
FsmBypass::shouldBypass(uint64_t pc) const
{
    return machines_[indexOf(pc)].predict() == 0;
}

void
FsmBypass::update(uint64_t pc, bool reused)
{
    machines_[indexOf(pc)].update(reused ? 1 : 0);
}

BypassSimResult
simulateBypass(const ValueTrace &accesses, const CacheConfig &config,
               BypassPredictor &predictor, const BypassSimOptions &options)
{
    SetAssocCache cache(config);
    BypassSimResult result;
    uint64_t bypass_wishes = 0;
    for (const auto &record : accesses) {
        bool bypass = predictor.shouldBypass(record.pc);
        if (bypass && options.sampleEvery > 0 &&
            ++bypass_wishes %
                    static_cast<uint64_t>(options.sampleEvery) ==
                0) {
            bypass = false; // sampling fill
        }
        const CacheAccessResult access =
            cache.access(record.pc, record.value, !bypass);
        ++result.accesses;
        result.misses += !access.hit;
        result.bypasses += !access.hit && bypass;
        // Prompt positive evidence at first reuse; negative evidence
        // when a never-reused block dies. (Reused blocks already
        // reported their usefulness, so their eviction is silent.)
        if (access.firstReuse)
            predictor.update(access.reusedFillPc, true);
        if (access.evicted && !access.victimWasReused)
            predictor.update(access.victimFillPc, false);
    }
    return result;
}

void
collectReuseModel(const ValueTrace &accesses, const CacheConfig &config,
                  int log2_entries, MarkovModel &model,
                  BypassPredictor &baseline,
                  const BypassSimOptions &options)
{
    SetAssocCache cache(config);
    const size_t entries = 1ULL << log2_entries;
    std::vector<uint32_t> history(entries, 0);
    std::vector<int> pushes(entries, 0);
    uint64_t bypass_wishes = 0;

    for (const auto &record : accesses) {
        bool bypass = baseline.shouldBypass(record.pc);
        if (bypass && options.sampleEvery > 0 &&
            ++bypass_wishes %
                    static_cast<uint64_t>(options.sampleEvery) ==
                0) {
            bypass = false;
        }
        const CacheAccessResult access =
            cache.access(record.pc, record.value, !bypass);

        auto record_event = [&](uint64_t fill_pc, bool reused) {
            baseline.update(fill_pc, reused);
            const size_t entry = hashPc(fill_pc, log2_entries);
            const int bit = reused ? 1 : 0;
            if (pushes[entry] >= model.order()) {
                model.observe(history[entry] & lowMask(model.order()),
                              bit);
            }
            history[entry] = ((history[entry] << 1) |
                              static_cast<uint32_t>(bit)) &
                lowMask(model.order());
            if (pushes[entry] < model.order())
                ++pushes[entry];
        };

        // Mirror the runtime feedback exactly (see simulateBypass).
        if (access.firstReuse)
            record_event(access.reusedFillPc, true);
        if (access.evicted && !access.victimWasReused)
            record_event(access.victimFillPc, false);
    }
}

} // namespace autofsm
