#include "trace/trace_io.hh"

#include <algorithm>
#include <cstring>
#include <fstream>
#include <stdexcept>

#include "support/failpoint.hh"

namespace autofsm
{

namespace
{

constexpr uint32_t Magic = 0x4653'4d54; // "FSMT"
constexpr uint32_t KindBranch = 1;
constexpr uint32_t KindValue = 2;

/**
 * Upper bound on a declared record count. A count above this cannot be
 * a real trace (it would be a >64 GiB file) and is far more likely a
 * corrupt or adversarial header; rejecting it up front keeps a 16-byte
 * file from driving a multi-gigabyte reserve().
 */
constexpr uint64_t kMaxTraceRecords = 1ULL << 32;

/** Records to pre-reserve before the stream has proven it holds them. */
constexpr uint64_t kMaxEagerReserve = 1ULL << 20;

struct Header
{
    uint32_t magic;
    uint32_t kind;
    uint64_t records;
};

void
writeHeader(std::ostream &out, uint32_t kind, uint64_t records)
{
    const Header header{Magic, kind, records};
    out.write(reinterpret_cast<const char *>(&header), sizeof(header));
}

Header
readHeader(std::istream &in, uint32_t expected_kind)
{
    Header header{};
    in.read(reinterpret_cast<char *>(&header), sizeof(header));
    if (!in || header.magic != Magic)
        throw std::invalid_argument("trace file: bad magic");
    if (header.kind != expected_kind)
        throw std::invalid_argument("trace file: wrong trace kind");
    if (header.records > kMaxTraceRecords)
        throw std::invalid_argument(
            "trace file: implausible record count");
    return header;
}

template <typename T>
void
writeRaw(std::ostream &out, const T &value)
{
    out.write(reinterpret_cast<const char *>(&value), sizeof(T));
}

template <typename T>
T
readRaw(std::istream &in)
{
    T value{};
    in.read(reinterpret_cast<char *>(&value), sizeof(T));
    if (!in)
        throw std::invalid_argument("trace file: truncated");
    return value;
}

} // anonymous namespace

void
writeBranchTrace(std::ostream &out, const BranchTrace &trace)
{
    AUTOFSM_FAILPOINT("trace_io.write");
    writeHeader(out, KindBranch, trace.size());
    for (const auto &record : trace) {
        writeRaw(out, record.pc);
        writeRaw(out, static_cast<uint8_t>(record.taken));
    }
}

BranchTrace
readBranchTrace(std::istream &in)
{
    AUTOFSM_FAILPOINT("trace_io.read");
    const Header header = readHeader(in, KindBranch);
    BranchTrace trace;
    trace.reserve(std::min(header.records, kMaxEagerReserve));
    for (uint64_t i = 0; i < header.records; ++i) {
        BranchRecord record;
        record.pc = readRaw<uint64_t>(in);
        const uint8_t outcome = readRaw<uint8_t>(in);
        // A branch outcome must be exactly 0 or 1; anything else means
        // the stream is corrupt or misframed, not a legal trace.
        if (outcome > 1)
            throw std::invalid_argument("trace file: bad outcome byte");
        record.taken = outcome != 0;
        trace.push_back(record);
    }
    return trace;
}

void
writeValueTrace(std::ostream &out, const ValueTrace &trace)
{
    writeHeader(out, KindValue, trace.size());
    for (const auto &record : trace) {
        writeRaw(out, record.pc);
        writeRaw(out, record.value);
    }
}

ValueTrace
readValueTrace(std::istream &in)
{
    AUTOFSM_FAILPOINT("trace_io.read");
    const Header header = readHeader(in, KindValue);
    ValueTrace trace;
    trace.reserve(std::min(header.records, kMaxEagerReserve));
    for (uint64_t i = 0; i < header.records; ++i) {
        LoadRecord record;
        record.pc = readRaw<uint64_t>(in);
        record.value = readRaw<uint64_t>(in);
        trace.push_back(record);
    }
    return trace;
}

namespace
{

std::ofstream
openOut(const std::string &path)
{
    std::ofstream out(path, std::ios::binary);
    if (!out)
        throw std::invalid_argument("cannot open for writing: " + path);
    return out;
}

std::ifstream
openIn(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        throw std::invalid_argument("cannot open for reading: " + path);
    return in;
}

} // anonymous namespace

void
saveBranchTrace(const std::string &path, const BranchTrace &trace)
{
    auto out = openOut(path);
    writeBranchTrace(out, trace);
}

BranchTrace
loadBranchTrace(const std::string &path)
{
    auto in = openIn(path);
    return readBranchTrace(in);
}

void
saveValueTrace(const std::string &path, const ValueTrace &trace)
{
    auto out = openOut(path);
    writeValueTrace(out, trace);
}

ValueTrace
loadValueTrace(const std::string &path)
{
    auto in = openIn(path);
    return readValueTrace(in);
}

} // namespace autofsm
