/**
 * @file
 * Binary trace files.
 *
 * Real deployments of the design flow feed it traces captured by an
 * instrumentation tool (the paper used ATOM; today Pin or ChampSim).
 * This module defines the on-disk interchange format so captured traces
 * can replace the synthetic workload models without code changes:
 * a 16-byte header (magic, kind, record count) followed by fixed-size
 * little-endian records.
 */

#ifndef AUTOFSM_TRACE_TRACE_IO_HH
#define AUTOFSM_TRACE_TRACE_IO_HH

#include <iosfwd>
#include <string>

#include "trace/branch_trace.hh"
#include "trace/value_trace.hh"

namespace autofsm
{

/** @name Stream-based serialization. */
/// @{
void writeBranchTrace(std::ostream &out, const BranchTrace &trace);
BranchTrace readBranchTrace(std::istream &in);
void writeValueTrace(std::ostream &out, const ValueTrace &trace);
ValueTrace readValueTrace(std::istream &in);
/// @}

/** @name File-based convenience wrappers. */
/// @{
void saveBranchTrace(const std::string &path, const BranchTrace &trace);
BranchTrace loadBranchTrace(const std::string &path);
void saveValueTrace(const std::string &path, const ValueTrace &trace);
ValueTrace loadValueTrace(const std::string &path);
/// @}

} // namespace autofsm

#endif // AUTOFSM_TRACE_TRACE_IO_HH
