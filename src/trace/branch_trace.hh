/**
 * @file
 * Branch behavior traces.
 *
 * The unit of exchange between workload models and the branch-prediction
 * simulators: a time-ordered sequence of (pc, outcome) records, the same
 * information an ATOM/Pin-style instrumentation pass would deliver.
 */

#ifndef AUTOFSM_TRACE_BRANCH_TRACE_HH
#define AUTOFSM_TRACE_BRANCH_TRACE_HH

#include <cstdint>
#include <map>
#include <vector>

namespace autofsm
{

/** One dynamic conditional branch. */
struct BranchRecord
{
    uint64_t pc = 0;  ///< static branch address
    bool taken = false;
};

/** A whole program run's worth of dynamic branches. */
using BranchTrace = std::vector<BranchRecord>;

/** Per-static-branch execution summary. */
struct BranchProfileEntry
{
    uint64_t executions = 0;
    uint64_t taken = 0;
};

/** Static-branch profile: pc -> summary, ordered by pc. */
using BranchProfile = std::map<uint64_t, BranchProfileEntry>;

/** Summarize @p trace per static branch. */
BranchProfile profileTrace(const BranchTrace &trace);

} // namespace autofsm

#endif // AUTOFSM_TRACE_BRANCH_TRACE_HH
