/**
 * @file
 * Load value traces for the value-prediction experiments (Section 6).
 */

#ifndef AUTOFSM_TRACE_VALUE_TRACE_HH
#define AUTOFSM_TRACE_VALUE_TRACE_HH

#include <cstdint>
#include <vector>

namespace autofsm
{

/** One dynamic load instruction and the value it brought in. */
struct LoadRecord
{
    uint64_t pc = 0;    ///< static load address
    uint64_t value = 0; ///< loaded data value
};

/** A program run's worth of dynamic loads. */
using ValueTrace = std::vector<LoadRecord>;

} // namespace autofsm

#endif // AUTOFSM_TRACE_VALUE_TRACE_HH
