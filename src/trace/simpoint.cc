#include "trace/simpoint.hh"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <map>

#include "support/rng.hh"

namespace autofsm
{

namespace
{

/** Normalized per-interval frequency vector over static branches. */
using Signature = std::vector<double>;

/** Squared Euclidean distance. */
double
distance2(const Signature &a, const Signature &b)
{
    double sum = 0.0;
    for (size_t i = 0; i < a.size(); ++i) {
        const double d = a[i] - b[i];
        sum += d * d;
    }
    return sum;
}

/** Build one signature per interval: (pc, taken)-bucket frequencies. */
std::vector<Signature>
buildSignatures(const BranchTrace &trace, size_t interval_size)
{
    // Dimension assignment: every (static branch, direction) pair gets
    // a coordinate; including the direction makes phases with the same
    // footprint but different behavior separable.
    std::map<std::pair<uint64_t, bool>, size_t> dims;
    for (const auto &record : trace)
        dims.emplace(std::make_pair(record.pc, record.taken),
                     dims.size());

    std::vector<Signature> signatures;
    const size_t intervals = trace.size() / interval_size;
    signatures.reserve(intervals);
    for (size_t i = 0; i < intervals; ++i) {
        Signature sig(dims.size(), 0.0);
        for (size_t j = 0; j < interval_size; ++j) {
            const auto &record = trace[i * interval_size + j];
            sig[dims.at({record.pc, record.taken})] += 1.0;
        }
        for (double &x : sig)
            x /= static_cast<double>(interval_size);
        signatures.push_back(std::move(sig));
    }
    return signatures;
}

} // anonymous namespace

std::vector<SimPoint>
selectSimPoints(const BranchTrace &trace, const SimPointOptions &options)
{
    assert(options.intervalSize > 0 && options.clusters >= 1);
    const std::vector<Signature> signatures =
        buildSignatures(trace, options.intervalSize);
    if (signatures.empty())
        return {};

    const size_t n = signatures.size();
    const size_t k = std::min(static_cast<size_t>(options.clusters), n);

    // k-means++-style seeding: first centroid random, then farthest-
    // point heuristic (deterministic given the seed).
    Rng rng(options.seed);
    std::vector<Signature> centroids;
    centroids.push_back(signatures[rng.below(n)]);
    while (centroids.size() < k) {
        size_t far = 0;
        double far_d = -1.0;
        for (size_t i = 0; i < n; ++i) {
            double nearest = distance2(signatures[i], centroids[0]);
            for (size_t c = 1; c < centroids.size(); ++c) {
                nearest = std::min(nearest,
                                   distance2(signatures[i], centroids[c]));
            }
            if (nearest > far_d) {
                far_d = nearest;
                far = i;
            }
        }
        centroids.push_back(signatures[far]);
    }

    // Lloyd iterations.
    std::vector<size_t> assignment(n, 0);
    for (int iter = 0; iter < options.iterations; ++iter) {
        bool moved = false;
        for (size_t i = 0; i < n; ++i) {
            size_t best = 0;
            double best_d = distance2(signatures[i], centroids[0]);
            for (size_t c = 1; c < k; ++c) {
                const double d = distance2(signatures[i], centroids[c]);
                if (d < best_d) {
                    best_d = d;
                    best = c;
                }
            }
            if (assignment[i] != best) {
                assignment[i] = best;
                moved = true;
            }
        }
        if (!moved && iter > 0)
            break;

        for (size_t c = 0; c < k; ++c) {
            Signature mean(signatures[0].size(), 0.0);
            size_t count = 0;
            for (size_t i = 0; i < n; ++i) {
                if (assignment[i] != c)
                    continue;
                ++count;
                for (size_t d = 0; d < mean.size(); ++d)
                    mean[d] += signatures[i][d];
            }
            if (count == 0)
                continue; // empty cluster keeps its centroid
            for (double &x : mean)
                x /= static_cast<double>(count);
            centroids[c] = std::move(mean);
        }
    }

    // Representative per cluster: the member closest to the centroid.
    std::vector<SimPoint> points;
    for (size_t c = 0; c < k; ++c) {
        size_t best = n;
        double best_d = 0.0;
        size_t members = 0;
        for (size_t i = 0; i < n; ++i) {
            if (assignment[i] != c)
                continue;
            ++members;
            const double d = distance2(signatures[i], centroids[c]);
            if (best == n || d < best_d) {
                best = i;
                best_d = d;
            }
        }
        if (members == 0)
            continue;
        points.push_back(
            {best, static_cast<double>(members) / static_cast<double>(n)});
    }
    std::sort(points.begin(), points.end(),
              [](const SimPoint &a, const SimPoint &b) {
                  return a.interval < b.interval;
              });
    return points;
}

BranchTrace
sampleTrace(const BranchTrace &trace, const std::vector<SimPoint> &points,
            size_t interval_size)
{
    BranchTrace sampled;
    sampled.reserve(points.size() * interval_size);
    for (const SimPoint &point : points) {
        const size_t begin = point.interval * interval_size;
        const size_t end = std::min(begin + interval_size, trace.size());
        sampled.insert(sampled.end(), trace.begin() + begin,
                       trace.begin() + end);
    }
    return sampled;
}

} // namespace autofsm
