/**
 * @file
 * SimPoint-style representative-interval selection.
 *
 * The paper's traces are "300 million instructions from the SimPoints
 * recommended in [37, 38]": full program runs are summarized by a few
 * representative intervals found by clustering per-interval behavior
 * signatures. This module reproduces that methodology for branch
 * traces: split the run into fixed-size intervals, build a per-interval
 * frequency vector over static branches (the branch-trace analogue of a
 * basic-block vector), cluster with k-means, and keep the interval
 * closest to each centroid, weighted by its cluster's share of the run.
 */

#ifndef AUTOFSM_TRACE_SIMPOINT_HH
#define AUTOFSM_TRACE_SIMPOINT_HH

#include <cstddef>
#include <vector>

#include "trace/branch_trace.hh"

namespace autofsm
{

/** One selected representative interval. */
struct SimPoint
{
    /** Index of the representative interval within the trace. */
    size_t interval = 0;
    /** Fraction of all intervals its cluster accounts for. */
    double weight = 0.0;
};

/** Knobs for selection. */
struct SimPointOptions
{
    /** Dynamic branches per interval. */
    size_t intervalSize = 10000;
    /** Number of clusters / simulation points. */
    int clusters = 4;
    /** k-means iterations. */
    int iterations = 20;
    /** Deterministic seeding. */
    uint64_t seed = 0x51a9;
};

/**
 * Select representative intervals of @p trace.
 *
 * @return One SimPoint per non-empty cluster (at most options.clusters),
 *         sorted by interval index; weights sum to 1.
 */
std::vector<SimPoint> selectSimPoints(const BranchTrace &trace,
                                      const SimPointOptions &options = {});

/**
 * Concatenate the selected intervals into a reduced trace (the sampled
 * stand-in for the full run).
 */
BranchTrace sampleTrace(const BranchTrace &trace,
                        const std::vector<SimPoint> &points,
                        size_t interval_size);

} // namespace autofsm

#endif // AUTOFSM_TRACE_SIMPOINT_HH
