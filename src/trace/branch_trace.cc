#include "trace/branch_trace.hh"

namespace autofsm
{

BranchProfile
profileTrace(const BranchTrace &trace)
{
    BranchProfile profile;
    for (const auto &record : trace) {
        auto &entry = profile[record.pc];
        entry.executions += 1;
        entry.taken += record.taken ? 1 : 0;
    }
    return profile;
}

} // namespace autofsm
