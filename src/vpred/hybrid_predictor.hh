/**
 * @file
 * Hybrid value predictor (Section 6.1's "hybrid approaches", Wang &
 * Franklin [48] / Rhodes-style): a two-delta stride component and an
 * FCM component run side by side; a per-entry SUD chooser tracks which
 * component has been right more often for each static load and selects
 * its prediction.
 */

#ifndef AUTOFSM_VPRED_HYBRID_PREDICTOR_HH
#define AUTOFSM_VPRED_HYBRID_PREDICTOR_HH

#include <vector>

#include "support/sud_counter.hh"
#include "vpred/context_predictor.hh"
#include "vpred/stride_predictor.hh"

namespace autofsm
{

/** Hybrid geometry. */
struct HybridConfig
{
    StrideConfig stride;       ///< stride component (also the entry map)
    FcmConfig fcm;             ///< context component
    SudConfig chooser{3, 1, 1, 2}; ///< per-entry component selector
};

/** Stride + FCM hybrid with a per-entry chooser. */
class HybridPredictor : public ValuePredictor
{
  public:
    explicit HybridPredictor(const HybridConfig &config = {});

    StrideOutcome executeLoad(uint64_t pc, uint64_t value) override;
    size_t indexOf(uint64_t pc) const override;
    size_t entries() const override;
    std::string name() const override;

    /** Fraction of predicted loads served by the FCM side. */
    double fcmShare() const;

  private:
    HybridConfig config_;
    TwoDeltaStridePredictor stride_;
    FcmPredictor fcm_;
    /** High value selects the FCM component. */
    std::vector<SudCounter> chooser_;
    uint64_t predicted_ = 0;
    uint64_t fcmChosen_ = 0;
};

} // namespace autofsm

#endif // AUTOFSM_VPRED_HYBRID_PREDICTOR_HH
