#include "vpred/context_predictor.hh"

#include <cassert>

#include "support/bits.hh"

namespace autofsm
{

FcmPredictor::FcmPredictor(const FcmConfig &config)
    : config_(config),
      level1_(static_cast<size_t>(config.level1.entries)),
      level2_(1ULL << config.log2Level2)
{
    assert(config.level1.entries > 0 &&
           (config.level1.entries & (config.level1.entries - 1)) == 0);
    assert(config.order >= 1 && config.order <= 3);
    assert(config.log2Level2 >= 4 && config.log2Level2 <= 24);
}

size_t
FcmPredictor::indexOf(uint64_t pc) const
{
    return static_cast<size_t>(
        (pc >> 2) & static_cast<uint64_t>(config_.level1.entries - 1));
}

size_t
FcmPredictor::entries() const
{
    return level1_.size();
}

uint64_t
FcmPredictor::tagOf(uint64_t pc) const
{
    const int index_bits =
        ceilLog2(static_cast<uint32_t>(config_.level1.entries));
    return (pc >> (2 + index_bits)) & lowMask(config_.level1.tagBits);
}

uint64_t
FcmPredictor::foldValue(uint64_t context, uint64_t value)
{
    // The context is a shift register of 16-bit value hashes: exactly
    // the last K values, oldest bits discarded by the caller's mask.
    const uint64_t h16 = (value * 0x9e3779b97f4a7c15ULL) >> 48;
    return (context << 16) | h16;
}

size_t
FcmPredictor::level2Index(uint64_t context) const
{
    uint64_t h = context * 0xff51afd7ed558ccdULL;
    h ^= h >> 33;
    return static_cast<size_t>(h & ((1ULL << config_.log2Level2) - 1));
}

StrideOutcome
FcmPredictor::executeLoad(uint64_t pc, uint64_t value)
{
    StrideOutcome outcome;
    outcome.entry = indexOf(pc);
    Level1Entry &entry = level1_[outcome.entry];

    const uint64_t mask =
        (16 * config_.order >= 64) ? ~0ULL
                                   : ((1ULL << (16 * config_.order)) - 1);

    if (!entry.valid || entry.tag != tagOf(pc)) {
        entry.valid = true;
        entry.tag = tagOf(pc);
        entry.context = foldValue(0, value) & mask;
        entry.seen = 1;
        return outcome; // allocation: no prediction
    }

    if (entry.seen >= config_.order) {
        Level2Entry &slot = level2_[level2Index(entry.context)];
        if (slot.valid) {
            outcome.predicted = true;
            outcome.correct = slot.value == value;
        }
        // Train the context -> value mapping.
        slot.valid = true;
        slot.value = value;
    }

    entry.context = foldValue(entry.context, value) & mask;
    if (entry.seen < config_.order)
        ++entry.seen;
    return outcome;
}

std::string
FcmPredictor::name() const
{
    return "fcm-o" + std::to_string(config_.order) + "-2^" +
        std::to_string(config_.log2Level2);
}

} // namespace autofsm
