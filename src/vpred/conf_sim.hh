/**
 * @file
 * Confidence-estimation simulation and training (Section 6.3-6.4).
 *
 * Two passes share the same mechanics: the *measurement* pass drives a
 * value trace through the stride predictor and a confidence estimator
 * and reports accuracy/coverage; the *training* pass instead feeds each
 * table entry's correctness history into Markov models of the requested
 * orders (this is how the cross-trained FSM estimators of Figure 2 are
 * built).
 */

#ifndef AUTOFSM_VPRED_CONF_SIM_HH
#define AUTOFSM_VPRED_CONF_SIM_HH

#include <vector>

#include "fsmgen/markov.hh"
#include "trace/value_trace.hh"
#include "vpred/confidence.hh"
#include "vpred/stride_predictor.hh"

namespace autofsm
{

/** Accuracy/coverage measurement of one confidence configuration. */
struct ConfidenceResult
{
    uint64_t loads = 0;
    uint64_t correct = 0;            ///< correct value predictions
    uint64_t confident = 0;          ///< loads marked confident
    uint64_t confidentCorrect = 0;   ///< confident and correct

    /** P(correct | marked confident); 0 when nothing was confident. */
    double
    accuracy() const
    {
        return confident == 0
            ? 0.0
            : static_cast<double>(confidentCorrect) /
                static_cast<double>(confident);
    }

    /** Fraction of correct predictions that were marked confident. */
    double
    coverage() const
    {
        return correct == 0
            ? 0.0
            : static_cast<double>(confidentCorrect) /
                static_cast<double>(correct);
    }
};

/**
 * Measure @p estimator against @p trace: for every load, consult the
 * estimator for the entry the load maps to, run @p predictor, then
 * update the estimator with the verdict. The estimator bank must have
 * at least predictor.entries() entries.
 */
ConfidenceResult simulateConfidence(const ValueTrace &trace,
                                    ValuePredictor &predictor,
                                    ConfidenceEstimator &estimator);

/**
 * Convenience overload: a fresh two-delta stride predictor of the
 * given geometry (the paper's configuration).
 */
ConfidenceResult simulateConfidence(const ValueTrace &trace,
                                    const StrideConfig &config,
                                    ConfidenceEstimator &estimator);

/**
 * Training pass: feed each entry's correctness stream into every model
 * in @p models (each may have a different order). Entries keep
 * independent history registers, exactly mirroring how the per-entry
 * FSM estimators see the world at runtime.
 */
void collectConfidenceModels(const ValueTrace &trace,
                             ValuePredictor &predictor,
                             std::vector<MarkovModel *> models);

/** Convenience overload: fresh two-delta stride predictor. */
void collectConfidenceModels(const ValueTrace &trace,
                             const StrideConfig &config,
                             std::vector<MarkovModel *> models);

} // namespace autofsm

#endif // AUTOFSM_VPRED_CONF_SIM_HH
