/**
 * @file
 * Confidence estimators for value prediction (Sections 6.2-6.3).
 *
 * One estimator instance lives per value-predictor table entry (the
 * paper's 2K SUD counters). Implementations: the SUD counter family
 * (including resetting counters via a full decrement) and the
 * automatically designed FSM estimators, all instances of which share
 * one immutable transition table.
 */

#ifndef AUTOFSM_VPRED_CONFIDENCE_HH
#define AUTOFSM_VPRED_CONFIDENCE_HH

#include <memory>
#include <string>
#include <vector>

#include "automata/dfa.hh"
#include "fsmgen/predictor_fsm.hh"
#include "support/sud_counter.hh"

namespace autofsm
{

/** Per-entry confidence estimation interface. */
class ConfidenceEstimator
{
  public:
    virtual ~ConfidenceEstimator() = default;

    /** Is entry @p entry currently confident? */
    virtual bool confident(size_t entry) const = 0;

    /** Record whether entry @p entry's value prediction was correct. */
    virtual void update(size_t entry, bool correct) = 0;

    /** Configuration label for reports. */
    virtual std::string name() const = 0;
};

/** A bank of SUD counters, one per predictor entry. */
class SudConfidence : public ConfidenceEstimator
{
  public:
    SudConfidence(size_t entries, const SudConfig &config);

    bool confident(size_t entry) const override;
    void update(size_t entry, bool correct) override;
    std::string name() const override;

  private:
    SudConfig config_;
    std::vector<SudCounter> counters_;
};

/** A bank of generated-FSM estimators sharing one transition table. */
class FsmConfidence : public ConfidenceEstimator
{
  public:
    FsmConfidence(size_t entries, const Dfa &fsm, std::string label = "fsm");

    bool confident(size_t entry) const override;
    void update(size_t entry, bool correct) override;
    std::string name() const override;

    /** Number of states in the shared machine. */
    int numStates() const { return table_->numStates(); }

  private:
    std::shared_ptr<const FsmTable> table_;
    std::vector<PredictorFsm> machines_;
    std::string label_;
};

} // namespace autofsm

#endif // AUTOFSM_VPRED_CONFIDENCE_HH
