#include "vpred/conf_sim.hh"

#include <algorithm>
#include <cassert>

#include "fsmgen/profile.hh"
#include "obs/metrics.hh"
#include "support/bits.hh"

namespace autofsm
{

namespace
{

/**
 * Publish one confidence run's coverage tallies, labelled by estimator
 * (bounded cardinality: one per swept configuration). Bumped once per
 * run so the per-load hot loop stays untouched.
 */
void
publishConfidenceRun(const ConfidenceEstimator &estimator,
                     const ConfidenceResult &result)
{
    obs::MetricsRegistry &registry = obs::globalMetrics();
    if (!registry.enabled())
        return;
    const obs::Labels labels = {{"estimator", estimator.name()}};
    registry
        .counter("autofsm_vpred_loads_total",
                 "Dynamic loads simulated by the confidence harness.",
                 labels)
        .inc(result.loads);
    registry
        .counter("autofsm_vpred_correct_total",
                 "Loads whose value prediction was correct.", labels)
        .inc(result.correct);
    registry
        .counter("autofsm_vpred_confident_total",
                 "Loads the estimator marked confident.", labels)
        .inc(result.confident);
    registry
        .counter("autofsm_vpred_confident_correct_total",
                 "Confident loads that were also correct.", labels)
        .inc(result.confidentCorrect);
}

} // anonymous namespace

ConfidenceResult
simulateConfidence(const ValueTrace &trace, ValuePredictor &predictor,
                   ConfidenceEstimator &estimator)
{
    ConfidenceResult result;
    for (const auto &record : trace) {
        const size_t entry = predictor.indexOf(record.pc);
        const bool marked = estimator.confident(entry);
        const StrideOutcome outcome =
            predictor.executeLoad(record.pc, record.value);

        ++result.loads;
        result.correct += outcome.correct;
        result.confident += marked;
        result.confidentCorrect += marked && outcome.correct;

        estimator.update(entry, outcome.correct);
    }
    publishConfidenceRun(estimator, result);
    return result;
}

ConfidenceResult
simulateConfidence(const ValueTrace &trace, const StrideConfig &config,
                   ConfidenceEstimator &estimator)
{
    TwoDeltaStridePredictor predictor(config);
    return simulateConfidence(trace, predictor, estimator);
}

void
collectConfidenceModels(const ValueTrace &trace, ValuePredictor &predictor,
                        std::vector<MarkovModel *> models)
{
    assert(!models.empty());
    std::vector<int> orders;
    orders.reserve(models.size());
    int max_order = 0;
    for (const MarkovModel *model : models) {
        orders.push_back(model->order());
        max_order = std::max(max_order, model->order());
    }

    // Per-entry correctness history plus a saturating push count so each
    // order knows when its own (shorter) warm-up completes. One flat
    // counter at the widest order absorbs every outcome; the per-order
    // tables are folded out at the end (fsmgen/profile.hh) instead of
    // updating every model inside the per-load loop.
    std::vector<uint32_t> history(predictor.entries(), 0);
    std::vector<int> pushes(predictor.entries(), 0);
    MultiOrderCounter counter(max_order);

    for (const auto &record : trace) {
        const StrideOutcome outcome =
            predictor.executeLoad(record.pc, record.value);
        const size_t entry = outcome.entry;

        counter.observe(history[entry], pushes[entry],
                        outcome.correct ? 1 : 0);

        history[entry] = ((history[entry] << 1) |
                          (outcome.correct ? 1U : 0U)) &
            lowMask(max_order);
        if (pushes[entry] < max_order)
            ++pushes[entry];
    }

    MultiOrderProfile profile = counter.finish(orders);
    for (MarkovModel *model : models)
        model->merge(profile.model(model->order()));
}

void
collectConfidenceModels(const ValueTrace &trace, const StrideConfig &config,
                        std::vector<MarkovModel *> models)
{
    TwoDeltaStridePredictor predictor(config);
    collectConfidenceModels(trace, predictor, std::move(models));
}

} // namespace autofsm
