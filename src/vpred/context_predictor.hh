/**
 * @file
 * Finite Context Method (FCM) value predictor (Sazeides & Smith, the
 * paper's reference [33]): a first-level table tracks, per static load,
 * a hash of its last K values; a second-level table maps that context
 * hash to the value that followed it last time. Captures repeating
 * non-arithmetic sequences that stride predictors cannot.
 */

#ifndef AUTOFSM_VPRED_CONTEXT_PREDICTOR_HH
#define AUTOFSM_VPRED_CONTEXT_PREDICTOR_HH

#include <vector>

#include "vpred/value_predictor.hh"

namespace autofsm
{

/** FCM geometry. */
struct FcmConfig
{
    /** First-level (per-load) table geometry. */
    StrideConfig level1;
    /** log2 entries of the shared second-level value table. */
    int log2Level2 = 16;
    /** Context order: how many previous values form the context. */
    int order = 2;
};

/** The order-K FCM predictor. */
class FcmPredictor : public ValuePredictor
{
  public:
    explicit FcmPredictor(const FcmConfig &config = {});

    StrideOutcome executeLoad(uint64_t pc, uint64_t value) override;
    size_t indexOf(uint64_t pc) const override;
    size_t entries() const override;
    std::string name() const override;

  private:
    struct Level1Entry
    {
        bool valid = false;
        uint64_t tag = 0;
        uint64_t context = 0; ///< rolling hash of the last K values
        int seen = 0;         ///< values folded in so far (context warm-up)
    };

    struct Level2Entry
    {
        bool valid = false;
        uint64_t value = 0;
    };

    uint64_t tagOf(uint64_t pc) const;
    size_t level2Index(uint64_t context) const;
    static uint64_t foldValue(uint64_t context, uint64_t value);

    FcmConfig config_;
    std::vector<Level1Entry> level1_;
    std::vector<Level2Entry> level2_;
};

} // namespace autofsm

#endif // AUTOFSM_VPRED_CONTEXT_PREDICTOR_HH
