/**
 * @file
 * Common interface of the load value predictors (Section 6.1).
 *
 * The paper focuses on the two-delta stride predictor but surveys the
 * alternatives (last-value, context/FCM, hybrids); all are provided
 * behind one interface so any of them can feed the confidence
 * estimation machinery.
 */

#ifndef AUTOFSM_VPRED_VALUE_PREDICTOR_HH
#define AUTOFSM_VPRED_VALUE_PREDICTOR_HH

#include <cstddef>
#include <cstdint>
#include <string>

namespace autofsm
{

/**
 * Geometry shared by the table-based value predictors: a direct-mapped,
 * partially-tagged table indexed by load PC.
 */
struct StrideConfig
{
    int entries = 2048; ///< power-of-two table size
    int tagBits = 16;   ///< partial tag per entry
};

/** Result of one load execution through a value predictor. */
struct StrideOutcome
{
    /** Table entry the load mapped to (for per-entry confidence). */
    size_t entry = 0;
    /** Whether a prediction was made (tag hit, warm context). */
    bool predicted = false;
    /** Whether the predicted value matched the loaded value. */
    bool correct = false;
};

/** A table-based load value predictor. */
class ValuePredictor
{
  public:
    virtual ~ValuePredictor() = default;

    /**
     * Execute the load at @p pc observing @p value: produce the
     * prediction verdict, then train.
     */
    virtual StrideOutcome executeLoad(uint64_t pc, uint64_t value) = 0;

    /** Table entry index for @p pc (for per-entry confidence). */
    virtual size_t indexOf(uint64_t pc) const = 0;

    /** Number of table entries (confidence estimator bank size). */
    virtual size_t entries() const = 0;

    /** Configuration label for reports. */
    virtual std::string name() const = 0;
};

} // namespace autofsm

#endif // AUTOFSM_VPRED_VALUE_PREDICTOR_HH
