/**
 * @file
 * Last-value predictor (Lipasti et al., the paper's references
 * [22, 23]): predict that a load returns the same value as its previous
 * execution.
 */

#ifndef AUTOFSM_VPRED_LAST_VALUE_HH
#define AUTOFSM_VPRED_LAST_VALUE_HH

#include <vector>

#include "vpred/value_predictor.hh"

namespace autofsm
{

/** Direct-mapped, tagged last-value prediction table. */
class LastValuePredictor : public ValuePredictor
{
  public:
    explicit LastValuePredictor(const StrideConfig &config = {});

    StrideOutcome executeLoad(uint64_t pc, uint64_t value) override;
    size_t indexOf(uint64_t pc) const override;
    size_t entries() const override;
    std::string name() const override;

  private:
    struct Entry
    {
        bool valid = false;
        uint64_t tag = 0;
        uint64_t lastValue = 0;
    };

    uint64_t tagOf(uint64_t pc) const;

    StrideConfig config_;
    std::vector<Entry> entries_;
};

} // namespace autofsm

#endif // AUTOFSM_VPRED_LAST_VALUE_HH
