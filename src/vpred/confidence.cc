#include "vpred/confidence.hh"

namespace autofsm
{

SudConfidence::SudConfidence(size_t entries, const SudConfig &config)
    : config_(config), counters_(entries, SudCounter(config))
{}

bool
SudConfidence::confident(size_t entry) const
{
    return counters_[entry].predict();
}

void
SudConfidence::update(size_t entry, bool correct)
{
    counters_[entry].update(correct);
}

std::string
SudConfidence::name() const
{
    return "sud(max=" + std::to_string(config_.max) +
        ",dec=" + std::to_string(config_.decrement) +
        ",thr=" + std::to_string(config_.threshold) + ")";
}

FsmConfidence::FsmConfidence(size_t entries, const Dfa &fsm,
                             std::string label)
    : table_(std::make_shared<const FsmTable>(fsm)), label_(std::move(label))
{
    machines_.reserve(entries);
    for (size_t i = 0; i < entries; ++i)
        machines_.emplace_back(table_);
}

bool
FsmConfidence::confident(size_t entry) const
{
    return machines_[entry].predict() != 0;
}

void
FsmConfidence::update(size_t entry, bool correct)
{
    machines_[entry].update(correct ? 1 : 0);
}

std::string
FsmConfidence::name() const
{
    return label_;
}

} // namespace autofsm
