/**
 * @file
 * Two-delta stride load value predictor (Section 6.1).
 *
 * Each entry tracks a tag, the last value, the predicted stride and the
 * last observed stride; the predicted stride is replaced only when the
 * same new stride is seen twice in a row (Eickemeyer & Vassiliadis /
 * Sazeides & Smith). The paper uses a 2K-entry table and predicts only
 * load instructions; confidence estimation is layered on top, one
 * estimator per table entry.
 */

#ifndef AUTOFSM_VPRED_STRIDE_PREDICTOR_HH
#define AUTOFSM_VPRED_STRIDE_PREDICTOR_HH

#include <vector>

#include "vpred/value_predictor.hh"

namespace autofsm
{

/** The two-delta stride value predictor. */
class TwoDeltaStridePredictor : public ValuePredictor
{
  public:
    explicit TwoDeltaStridePredictor(const StrideConfig &config = {});

    /**
     * Execute the load at @p pc observing @p value: produce the
     * prediction verdict, then train the entry. Tag misses allocate and
     * report an incorrect, unpredicted outcome.
     */
    StrideOutcome executeLoad(uint64_t pc, uint64_t value) override;

    size_t indexOf(uint64_t pc) const override;
    size_t entries() const override;
    std::string name() const override;

    const StrideConfig &config() const { return config_; }

  private:
    struct Entry
    {
        bool valid = false;
        uint64_t tag = 0;
        uint64_t lastValue = 0;
        int64_t stride = 0;
        int64_t lastStride = 0;
    };

    uint64_t tagOf(uint64_t pc) const;

    StrideConfig config_;
    std::vector<Entry> entries_;
};

} // namespace autofsm

#endif // AUTOFSM_VPRED_STRIDE_PREDICTOR_HH
