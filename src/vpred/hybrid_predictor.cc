#include "vpred/hybrid_predictor.hh"

namespace autofsm
{

HybridPredictor::HybridPredictor(const HybridConfig &config)
    : config_(config), stride_(config.stride), fcm_(config.fcm),
      chooser_(static_cast<size_t>(config.stride.entries),
               SudCounter(config.chooser, config.chooser.max / 2))
{}

size_t
HybridPredictor::indexOf(uint64_t pc) const
{
    return stride_.indexOf(pc);
}

size_t
HybridPredictor::entries() const
{
    return stride_.entries();
}

StrideOutcome
HybridPredictor::executeLoad(uint64_t pc, uint64_t value)
{
    // Run both components; each trains itself unconditionally so the
    // loser keeps learning (total update, as in hybrid branch
    // predictors).
    const StrideOutcome stride = stride_.executeLoad(pc, value);
    const StrideOutcome fcm = fcm_.executeLoad(pc, value);

    SudCounter &chooser = chooser_[stride.entry];
    const bool pick_fcm = chooser.predict();

    StrideOutcome outcome;
    outcome.entry = stride.entry;
    if (pick_fcm && fcm.predicted) {
        outcome.predicted = true;
        outcome.correct = fcm.correct;
        ++fcmChosen_;
    } else {
        outcome.predicted = stride.predicted;
        outcome.correct = stride.correct;
    }
    predicted_ += outcome.predicted;

    // The chooser trains only when the components disagree.
    if (stride.predicted && fcm.predicted &&
        stride.correct != fcm.correct) {
        chooser.update(fcm.correct);
    }
    return outcome;
}

double
HybridPredictor::fcmShare() const
{
    return predicted_ == 0
        ? 0.0
        : static_cast<double>(fcmChosen_) /
            static_cast<double>(predicted_);
}

std::string
HybridPredictor::name() const
{
    return "hybrid(" + stride_.name() + "+" + fcm_.name() + ")";
}

} // namespace autofsm
