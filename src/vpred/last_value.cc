#include "vpred/last_value.hh"

#include <cassert>

#include "support/bits.hh"

namespace autofsm
{

LastValuePredictor::LastValuePredictor(const StrideConfig &config)
    : config_(config), entries_(static_cast<size_t>(config.entries))
{
    assert(config.entries > 0 &&
           (config.entries & (config.entries - 1)) == 0);
}

size_t
LastValuePredictor::indexOf(uint64_t pc) const
{
    return static_cast<size_t>((pc >> 2) &
                               static_cast<uint64_t>(config_.entries - 1));
}

size_t
LastValuePredictor::entries() const
{
    return entries_.size();
}

uint64_t
LastValuePredictor::tagOf(uint64_t pc) const
{
    const int index_bits = ceilLog2(static_cast<uint32_t>(config_.entries));
    return (pc >> (2 + index_bits)) & lowMask(config_.tagBits);
}

StrideOutcome
LastValuePredictor::executeLoad(uint64_t pc, uint64_t value)
{
    StrideOutcome outcome;
    outcome.entry = indexOf(pc);
    Entry &entry = entries_[outcome.entry];

    if (!entry.valid || entry.tag != tagOf(pc)) {
        entry.valid = true;
        entry.tag = tagOf(pc);
        entry.lastValue = value;
        return outcome; // allocation: no prediction
    }

    outcome.predicted = true;
    outcome.correct = entry.lastValue == value;
    entry.lastValue = value;
    return outcome;
}

std::string
LastValuePredictor::name() const
{
    return "last-value" + std::to_string(config_.entries);
}

} // namespace autofsm
