#include "vpred/stride_predictor.hh"

#include <cassert>

#include "support/bits.hh"

namespace autofsm
{

TwoDeltaStridePredictor::TwoDeltaStridePredictor(const StrideConfig &config)
    : config_(config), entries_(static_cast<size_t>(config.entries))
{
    assert(config.entries > 0 &&
           (config.entries & (config.entries - 1)) == 0);
}

size_t
TwoDeltaStridePredictor::indexOf(uint64_t pc) const
{
    return static_cast<size_t>((pc >> 2) &
                               static_cast<uint64_t>(config_.entries - 1));
}

size_t
TwoDeltaStridePredictor::entries() const
{
    return entries_.size();
}

std::string
TwoDeltaStridePredictor::name() const
{
    return "two-delta-stride" + std::to_string(config_.entries);
}

uint64_t
TwoDeltaStridePredictor::tagOf(uint64_t pc) const
{
    const int index_bits = ceilLog2(static_cast<uint32_t>(config_.entries));
    return (pc >> (2 + index_bits)) & lowMask(config_.tagBits);
}

StrideOutcome
TwoDeltaStridePredictor::executeLoad(uint64_t pc, uint64_t value)
{
    StrideOutcome outcome;
    outcome.entry = indexOf(pc);
    Entry &entry = entries_[outcome.entry];

    if (!entry.valid || entry.tag != tagOf(pc)) {
        // Allocation: no basis for a prediction yet.
        entry.valid = true;
        entry.tag = tagOf(pc);
        entry.lastValue = value;
        entry.stride = 0;
        entry.lastStride = 0;
        outcome.predicted = false;
        outcome.correct = false;
        return outcome;
    }

    const uint64_t predicted =
        entry.lastValue + static_cast<uint64_t>(entry.stride);
    outcome.predicted = true;
    outcome.correct = predicted == value;

    // Two-delta training: only adopt a new stride seen twice in a row.
    const int64_t new_stride =
        static_cast<int64_t>(value - entry.lastValue);
    if (new_stride == entry.lastStride)
        entry.stride = new_stride;
    entry.lastStride = new_stride;
    entry.lastValue = value;
    return outcome;
}

} // namespace autofsm
