#include "flow/design_flow.hh"

#include <memory>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "flow/design_memo.hh"
#include "fsmgen/profile.hh"
#include "obs/metrics.hh"
#include "obs/span.hh"
#include "support/failpoint.hh"
#include "support/json.hh"

namespace autofsm
{

namespace
{

constexpr FlowStage kAllStages[] = {
    FlowStage::Markov,   FlowStage::Patterns, FlowStage::Minimize,
    FlowStage::Regex,    FlowStage::Subset,   FlowStage::Hopcroft,
    FlowStage::StartReduce,
};
constexpr size_t kStageCount = std::size(kAllStages);

/** Global per-stage instrumentation, registered once. */
struct FlowTelemetry
{
    obs::Counter runs;
    obs::Histogram stageMillis[kStageCount];
    obs::Counter stageMetric[kStageCount];
};

FlowTelemetry &
flowTelemetry()
{
    static FlowTelemetry telemetry = [] {
        obs::MetricsRegistry &registry = obs::globalMetrics();
        FlowTelemetry t;
        t.runs = registry.counter("autofsm_flow_runs_total",
                                  "Design-flow pipeline executions.");
        for (size_t i = 0; i < kStageCount; ++i) {
            const obs::Labels labels = {
                {"stage", flowStageName(kAllStages[i])}};
            t.stageMillis[i] = registry.histogram(
                "autofsm_flow_stage_millis",
                "Wall-clock of one design-flow stage.",
                obs::defaultLatencyBucketsMillis(), labels);
            t.stageMetric[i] = registry.counter(
                "autofsm_flow_stage_metric_total",
                "Sum of the stage size metric (states/cubes/...) "
                "across runs.",
                labels);
        }
        return t;
    }();
    return telemetry;
}

/**
 * Record a taken fallback path: in the run's FlowTrace (as
 * "stage:kind") and in the process-wide fallback counter. Fallbacks are
 * rare, so the per-call counter registration (a lookup under the
 * registry mutex) is fine here.
 */
void
recordFallback(FlowTrace &trace, const char *stage, const char *kind)
{
    trace.noteFallback(std::string(stage) + ':' + kind);
    obs::globalMetrics()
        .counter("autofsm_flow_fallbacks_total",
                 "Degraded design-flow paths taken, by failing stage "
                 "and fallback kind.",
                 {{"stage", stage}, {"kind", kind}})
        .inc();
}

/**
 * Close @p span and publish the stage everywhere it is observed: the
 * per-run FlowTrace (whose millis are exactly the span's duration) and
 * the global per-stage histogram/counter pair.
 */
void
recordStage(FlowTrace &trace, FlowStage stage, obs::SpanScope &span,
            int64_t metric, const char *metric_name)
{
    const double millis = span.finishMillis();
    trace.add(stage, millis, metric, metric_name);
    const auto index = static_cast<size_t>(stage);
    flowTelemetry().stageMillis[index].observe(millis);
    if (metric > 0)
        flowTelemetry().stageMetric[index].inc(
            static_cast<uint64_t>(metric));
}

} // anonymous namespace

const char *
flowStageName(FlowStage stage)
{
    switch (stage) {
      case FlowStage::Markov: return "markov";
      case FlowStage::Patterns: return "patterns";
      case FlowStage::Minimize: return "minimize";
      case FlowStage::Regex: return "regex";
      case FlowStage::Subset: return "subset";
      case FlowStage::Hopcroft: return "hopcroft";
      case FlowStage::StartReduce: return "start-reduce";
    }
    return "?";
}

std::optional<FlowStage>
flowStageFromName(std::string_view name)
{
    for (const FlowStage stage : kAllStages) {
        if (name == flowStageName(stage))
            return stage;
    }
    return std::nullopt;
}

const StageRecord *
FlowTrace::find(FlowStage stage) const
{
    for (const auto &record : stages_) {
        if (record.stage == stage)
            return &record;
    }
    return nullptr;
}

double
FlowTrace::totalMillis() const
{
    double total = 0.0;
    for (const auto &record : stages_)
        total += record.millis;
    return total;
}

void
FlowTrace::renderJson(std::ostream &out) const
{
    JsonWriter json(out);
    json.beginArray();
    for (const auto &record : stages_) {
        json.beginObject();
        json.key("stage").value(flowStageName(record.stage));
        json.key("millis").value(record.millis);
        json.key("metric").value(record.metric);
        json.key("metricName").value(record.metricName);
        json.endObject();
    }
    json.endArray();
}

std::string
FlowTrace::toJson() const
{
    std::ostringstream out;
    renderJson(out);
    return out.str();
}

FlowResult
DesignFlow::run(const MarkovModel &model) const
{
    obs::SpanScope root(obs::currentTracer(), "flow.run");
    const Deadline deadline(options_.budget.deadlineMillis);
    return runStages(model, FlowTrace(), deadline);
}

FlowResult
DesignFlow::runOnTrace(const std::vector<int> &trace) const
{
    obs::SpanScope root(obs::currentTracer(), "flow.run");
    const Deadline deadline(options_.budget.deadlineMillis);
    obs::SpanScope span(obs::currentTracer(), "flow.markov");
    AUTOFSM_FAILPOINT("flow.markov");
    MarkovModel model = options_.flatProfiling
        ? trainMarkovModel(trace, options_.order)
        : [&] {
              MarkovModel sparse(options_.order);
              sparse.train(trace);
              return sparse;
          }();
    FlowTrace flow_trace;
    recordStage(flow_trace, FlowStage::Markov, span,
                static_cast<int64_t>(model.distinctHistories()),
                "histories");
    return runStages(model, std::move(flow_trace), deadline);
}

/**
 * The minimize-stage fallback ladder, entered after the configured
 * engine failed or exceeded its budget: try exact Quine-McCluskey, and
 * if that also fails (or the minterm budget rules it out too) settle
 * for the unminimized minterm cover, which is exact and always
 * constructible. Deadline expiry is not absorbed: a run that is out of
 * wall-clock must fail fast, not keep minimizing.
 */
void
DesignFlow::minimizeFallback(const TruthTable &table,
                             const MinimizeLimits &limits,
                             FsmDesignResult &result,
                             FlowTrace &trace) const
{
    try {
        result.cover = minimize(table, MinimizeAlgo::Exact, limits);
        recordFallback(trace, "minimize", "exact");
        return;
    } catch (const FlowError &e) {
        if (e.kind() == ErrorKind::DeadlineExceeded)
            throw;
    } catch (const std::exception &) {
        // fall through to the unminimized cover
    }
    result.cover = unminimizedCover(table);
    recordFallback(trace, "minimize", "unminimized");
}

/**
 * The automata-half fallback: when the regex/subset/Hopcroft/reduce
 * stages fail or blow the state budgets, the degraded — but always
 * available — answer is the paper's baseline, the 2-bit saturating
 * counter. Stage records are filled in for any stage that did not run
 * so every FlowTrace keeps the same shape.
 */
void
DesignFlow::automataFallback(FsmDesignResult &result,
                             FlowTrace &trace) const
{
    const char *failed = "regex";
    constexpr std::pair<FlowStage, const char *> kAutomataStages[] = {
        {FlowStage::Regex, "terms"},
        {FlowStage::Subset, "states"},
        {FlowStage::Hopcroft, "states"},
        {FlowStage::StartReduce, "states"},
    };
    for (const auto &[stage, metric] : kAutomataStages) {
        if (trace.find(stage) == nullptr) {
            failed = flowStageName(stage);
            break;
        }
    }

    const Dfa counter = Dfa::saturatingCounter(2);
    result.beforeReduction = counter;
    result.fsm = counter;
    result.statesSubset = counter.numStates();
    result.statesHopcroft = counter.numStates();
    result.statesFinal = counter.numStates();
    if (result.regexText.empty())
        result.regexText = "(degraded)";
    for (const auto &[stage, metric_name] : kAutomataStages) {
        if (trace.find(stage) == nullptr)
            trace.add(stage, 0.0, counter.numStates(), metric_name);
    }
    recordFallback(trace, failed, "saturating-counter");
}

FlowResult
DesignFlow::runStages(const MarkovModel &model, FlowTrace trace,
                      const Deadline &deadline) const
{
    if (model.order() != options_.order) {
        throw std::invalid_argument(
            "DesignFlow: model order " + std::to_string(model.order()) +
            " does not match options order " +
            std::to_string(options_.order));
    }

    obs::Tracer *tracer = obs::currentTracer();
    flowTelemetry().runs.inc();

    FlowResult out;
    out.trace = std::move(trace);
    FsmDesignResult &result = out.design;

    {
        deadline.check("patterns");
        obs::SpanScope span(tracer, "flow.patterns");
        AUTOFSM_FAILPOINT("flow.patterns");
        result.patterns = definePatterns(model, options_.patterns);
        recordStage(out.trace, FlowStage::Patterns, span,
                    static_cast<int64_t>(
                        result.patterns.predictOne.size() +
                        result.patterns.predictZero.size()),
                    "specified");
    }

    // Cross-item stage memo: identical partitions share one tail
    // execution. Eligibility requires an unlimited budget (finite
    // budgets can change the tail's products) and no armed failpoint (a
    // hit would mask the fault a test is injecting downstream). The
    // failpoint evaluates before the armed() bypass so it can itself be
    // driven.
    AUTOFSM_FAILPOINT("flow.designmemo");
    std::optional<DesignMemoKey> memo_key;
    if (options_.memoizeStages && options_.budget.unlimited() &&
        !failpoint::armed()) {
        memo_key = designMemoKey(result.patterns, options_.minimizer,
                                 options_.keepStartupStates);
        if (const auto entry = designMemoLookup(*memo_key)) {
            result.cover = entry->cover;
            result.regexText = entry->regexText;
            result.beforeReduction = entry->beforeReduction;
            result.fsm = entry->fsm;
            result.statesSubset = entry->statesSubset;
            result.statesHopcroft = entry->statesHopcroft;
            result.statesFinal = entry->statesFinal;
            // Keep the FlowTrace shape of a computed run; the tail cost
            // zero wall-clock, like the empty-cover short-circuit.
            out.trace.add(FlowStage::Minimize, 0.0,
                          static_cast<int64_t>(result.cover.size()),
                          "cubes");
            out.trace.add(FlowStage::Regex, 0.0,
                          static_cast<int64_t>(result.cover.size()),
                          "terms");
            out.trace.add(FlowStage::Subset, 0.0, result.statesSubset,
                          "states");
            out.trace.add(FlowStage::Hopcroft, 0.0,
                          result.statesHopcroft, "states");
            out.trace.add(FlowStage::StartReduce, 0.0,
                          result.statesFinal, "states");
            out.tailFromMemo = true;
            return out;
        }
    }

    {
        deadline.check("minimize");
        obs::SpanScope span(tracer, "flow.minimize");
        const TruthTable table = result.patterns.toTruthTable();
        MinimizeLimits limits;
        limits.maxEspressoIterations =
            options_.budget.maxEspressoIterations;
        limits.maxMinterms = options_.budget.maxMinterms;
        try {
            AUTOFSM_FAILPOINT("flow.minimize");
            result.cover = minimize(table, options_.minimizer, limits);
        } catch (const FlowError &e) {
            if (e.kind() == ErrorKind::DeadlineExceeded)
                throw;
            minimizeFallback(table, limits, result, out.trace);
        } catch (const std::exception &) {
            minimizeFallback(table, limits, result, out.trace);
        }
        recordStage(out.trace, FlowStage::Minimize, span,
                    static_cast<int64_t>(result.cover.size()), "cubes");
    }

    if (result.cover.empty()) {
        // Nothing to predict 1 on: the constant machine. (Hopcroft would
        // reduce the general pipeline to this anyway; short-circuiting
        // avoids building an NFA for the empty language.) The automata
        // stages are still recorded so every FlowTrace has the same
        // shape and the state counts stay inspectable.
        result.regexText = "(empty)";
        result.beforeReduction = Dfa::constant(0);
        result.fsm = result.beforeReduction;
        result.statesSubset = 1;
        result.statesHopcroft = 1;
        result.statesFinal = 1;
        out.trace.add(FlowStage::Regex, 0.0, 0, "terms");
        out.trace.add(FlowStage::Subset, 0.0, 1, "states");
        out.trace.add(FlowStage::Hopcroft, 0.0, 1, "states");
        out.trace.add(FlowStage::StartReduce, 0.0, 1, "states");
        return out;
    }

    try {
        std::optional<Regex> regex;
        {
            deadline.check("regex");
            obs::SpanScope span(tracer, "flow.regex");
            AUTOFSM_FAILPOINT("flow.regex");
            regex = regexFromCover(result.cover);
            result.regexText = regex->toString();
            recordStage(out.trace, FlowStage::Regex, span,
                        static_cast<int64_t>(result.cover.size()),
                        "terms");
        }

        {
            deadline.check("subset");
            obs::SpanScope span(tracer, "flow.subset");
            AUTOFSM_FAILPOINT("flow.subset");
            const Nfa nfa = Nfa::fromRegex(*regex);
            if (options_.budget.maxNfaStates > 0 &&
                nfa.numStates() > options_.budget.maxNfaStates) {
                throw FlowError(
                    "subset", ErrorKind::BudgetExceeded,
                    std::to_string(nfa.numStates()) +
                        " NFA states > budget " +
                        std::to_string(options_.budget.maxNfaStates));
            }
            result.beforeReduction =
                Dfa::fromNfa(nfa, options_.budget.maxDfaStates);
            result.statesSubset = result.beforeReduction.numStates();
            recordStage(out.trace, FlowStage::Subset, span,
                        result.statesSubset, "states");
        }

        {
            deadline.check("hopcroft");
            obs::SpanScope span(tracer, "flow.hopcroft");
            AUTOFSM_FAILPOINT("flow.hopcroft");
            result.beforeReduction =
                result.beforeReduction.minimizeHopcroft();
            result.statesHopcroft = result.beforeReduction.numStates();
            recordStage(out.trace, FlowStage::Hopcroft, span,
                        result.statesHopcroft, "states");
        }

        {
            deadline.check("start-reduce");
            obs::SpanScope span(tracer, "flow.start-reduce");
            AUTOFSM_FAILPOINT("flow.start-reduce");
            if (options_.keepStartupStates) {
                result.fsm = result.beforeReduction;
            } else {
                result.fsm = result.beforeReduction.steadyStateReduce();
            }
            result.statesFinal = result.fsm.numStates();
            recordStage(out.trace, FlowStage::StartReduce, span,
                        result.statesFinal, "states");
        }
    } catch (const FlowError &e) {
        // Budget overruns degrade to the saturating counter; an expired
        // deadline means the whole run is out of time and must fail.
        if (e.kind() == ErrorKind::DeadlineExceeded)
            throw;
        automataFallback(result, out.trace);
    } catch (const std::exception &) {
        automataFallback(result, out.trace);
    }
    // Only clean, fully computed tails are worth sharing: a degraded
    // result reflects this run's failures, not the key's true product.
    if (memo_key && !out.trace.degraded()) {
        auto entry = std::make_shared<DesignMemoEntry>();
        entry->cover = result.cover;
        entry->regexText = result.regexText;
        entry->beforeReduction = result.beforeReduction;
        entry->fsm = result.fsm;
        entry->statesSubset = result.statesSubset;
        entry->statesHopcroft = result.statesHopcroft;
        entry->statesFinal = result.statesFinal;
        for (const StageRecord &stage : out.trace.stages()) {
            entry->stageMillis.emplace_back(flowStageName(stage.stage),
                                            stage.millis);
        }
        designMemoStore(std::move(*memo_key), std::move(entry));
    }
    return out;
}

} // namespace autofsm
