#include "flow/design_flow.hh"

#include <chrono>
#include <sstream>
#include <stdexcept>

#include "support/json.hh"

namespace autofsm
{

namespace
{

using Clock = std::chrono::steady_clock;

double
millisSince(Clock::time_point start)
{
    return std::chrono::duration<double, std::milli>(Clock::now() - start)
        .count();
}

} // anonymous namespace

const char *
flowStageName(FlowStage stage)
{
    switch (stage) {
      case FlowStage::Markov: return "markov";
      case FlowStage::Patterns: return "patterns";
      case FlowStage::Minimize: return "minimize";
      case FlowStage::Regex: return "regex";
      case FlowStage::Subset: return "subset";
      case FlowStage::Hopcroft: return "hopcroft";
      case FlowStage::StartReduce: return "start-reduce";
    }
    return "?";
}

const StageRecord *
FlowTrace::find(FlowStage stage) const
{
    for (const auto &record : stages_) {
        if (record.stage == stage)
            return &record;
    }
    return nullptr;
}

double
FlowTrace::totalMillis() const
{
    double total = 0.0;
    for (const auto &record : stages_)
        total += record.millis;
    return total;
}

void
FlowTrace::renderJson(std::ostream &out) const
{
    JsonWriter json(out);
    json.beginArray();
    for (const auto &record : stages_) {
        json.beginObject();
        json.key("stage").value(flowStageName(record.stage));
        json.key("millis").value(record.millis);
        json.key("metric").value(record.metric);
        json.key("metricName").value(record.metricName);
        json.endObject();
    }
    json.endArray();
}

std::string
FlowTrace::toJson() const
{
    std::ostringstream out;
    renderJson(out);
    return out.str();
}

FlowResult
DesignFlow::run(const MarkovModel &model) const
{
    return runStages(model, FlowTrace());
}

FlowResult
DesignFlow::runOnTrace(const std::vector<int> &trace) const
{
    const auto start = Clock::now();
    MarkovModel model(options_.order);
    model.train(trace);
    FlowTrace flow_trace;
    flow_trace.add(FlowStage::Markov, millisSince(start),
                   static_cast<int64_t>(model.distinctHistories()),
                   "histories");
    return runStages(model, std::move(flow_trace));
}

FlowResult
DesignFlow::runStages(const MarkovModel &model, FlowTrace trace) const
{
    if (model.order() != options_.order) {
        throw std::invalid_argument(
            "DesignFlow: model order " + std::to_string(model.order()) +
            " does not match options order " +
            std::to_string(options_.order));
    }

    FlowResult out;
    out.trace = std::move(trace);
    FsmDesignResult &result = out.design;

    auto start = Clock::now();
    result.patterns = definePatterns(model, options_.patterns);
    out.trace.add(FlowStage::Patterns, millisSince(start),
                  static_cast<int64_t>(result.patterns.predictOne.size() +
                                       result.patterns.predictZero.size()),
                  "specified");

    start = Clock::now();
    const TruthTable table = result.patterns.toTruthTable();
    result.cover = minimize(table, options_.minimizer);
    out.trace.add(FlowStage::Minimize, millisSince(start),
                  static_cast<int64_t>(result.cover.size()), "cubes");

    if (result.cover.empty()) {
        // Nothing to predict 1 on: the constant machine. (Hopcroft would
        // reduce the general pipeline to this anyway; short-circuiting
        // avoids building an NFA for the empty language.) The automata
        // stages are still recorded so every FlowTrace has the same
        // shape and the state counts stay inspectable.
        result.regexText = "(empty)";
        result.beforeReduction = Dfa::constant(0);
        result.fsm = result.beforeReduction;
        result.statesSubset = 1;
        result.statesHopcroft = 1;
        result.statesFinal = 1;
        out.trace.add(FlowStage::Regex, 0.0, 0, "terms");
        out.trace.add(FlowStage::Subset, 0.0, 1, "states");
        out.trace.add(FlowStage::Hopcroft, 0.0, 1, "states");
        out.trace.add(FlowStage::StartReduce, 0.0, 1, "states");
        return out;
    }

    start = Clock::now();
    const Regex regex = regexFromCover(result.cover);
    result.regexText = regex.toString();
    out.trace.add(FlowStage::Regex, millisSince(start),
                  static_cast<int64_t>(result.cover.size()), "terms");

    start = Clock::now();
    const Nfa nfa = Nfa::fromRegex(regex);
    const Dfa raw = Dfa::fromNfa(nfa);
    result.statesSubset = raw.numStates();
    out.trace.add(FlowStage::Subset, millisSince(start),
                  result.statesSubset, "states");

    start = Clock::now();
    result.beforeReduction = raw.minimizeHopcroft();
    result.statesHopcroft = result.beforeReduction.numStates();
    out.trace.add(FlowStage::Hopcroft, millisSince(start),
                  result.statesHopcroft, "states");

    start = Clock::now();
    if (options_.keepStartupStates) {
        result.fsm = result.beforeReduction;
    } else {
        result.fsm = result.beforeReduction.steadyStateReduce();
    }
    result.statesFinal = result.fsm.numStates();
    out.trace.add(FlowStage::StartReduce, millisSince(start),
                  result.statesFinal, "states");
    return out;
}

} // namespace autofsm
