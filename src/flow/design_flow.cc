#include "flow/design_flow.hh"

#include <sstream>
#include <stdexcept>

#include "obs/metrics.hh"
#include "obs/span.hh"
#include "support/json.hh"

namespace autofsm
{

namespace
{

constexpr FlowStage kAllStages[] = {
    FlowStage::Markov,   FlowStage::Patterns, FlowStage::Minimize,
    FlowStage::Regex,    FlowStage::Subset,   FlowStage::Hopcroft,
    FlowStage::StartReduce,
};
constexpr size_t kStageCount = std::size(kAllStages);

/** Global per-stage instrumentation, registered once. */
struct FlowTelemetry
{
    obs::Counter runs;
    obs::Histogram stageMillis[kStageCount];
    obs::Counter stageMetric[kStageCount];
};

FlowTelemetry &
flowTelemetry()
{
    static FlowTelemetry telemetry = [] {
        obs::MetricsRegistry &registry = obs::globalMetrics();
        FlowTelemetry t;
        t.runs = registry.counter("autofsm_flow_runs_total",
                                  "Design-flow pipeline executions.");
        for (size_t i = 0; i < kStageCount; ++i) {
            const obs::Labels labels = {
                {"stage", flowStageName(kAllStages[i])}};
            t.stageMillis[i] = registry.histogram(
                "autofsm_flow_stage_millis",
                "Wall-clock of one design-flow stage.",
                obs::defaultLatencyBucketsMillis(), labels);
            t.stageMetric[i] = registry.counter(
                "autofsm_flow_stage_metric_total",
                "Sum of the stage size metric (states/cubes/...) "
                "across runs.",
                labels);
        }
        return t;
    }();
    return telemetry;
}

/**
 * Close @p span and publish the stage everywhere it is observed: the
 * per-run FlowTrace (whose millis are exactly the span's duration) and
 * the global per-stage histogram/counter pair.
 */
void
recordStage(FlowTrace &trace, FlowStage stage, obs::SpanScope &span,
            int64_t metric, const char *metric_name)
{
    const double millis = span.finishMillis();
    trace.add(stage, millis, metric, metric_name);
    const auto index = static_cast<size_t>(stage);
    flowTelemetry().stageMillis[index].observe(millis);
    if (metric > 0)
        flowTelemetry().stageMetric[index].inc(
            static_cast<uint64_t>(metric));
}

} // anonymous namespace

const char *
flowStageName(FlowStage stage)
{
    switch (stage) {
      case FlowStage::Markov: return "markov";
      case FlowStage::Patterns: return "patterns";
      case FlowStage::Minimize: return "minimize";
      case FlowStage::Regex: return "regex";
      case FlowStage::Subset: return "subset";
      case FlowStage::Hopcroft: return "hopcroft";
      case FlowStage::StartReduce: return "start-reduce";
    }
    return "?";
}

std::optional<FlowStage>
flowStageFromName(std::string_view name)
{
    for (const FlowStage stage : kAllStages) {
        if (name == flowStageName(stage))
            return stage;
    }
    return std::nullopt;
}

const StageRecord *
FlowTrace::find(FlowStage stage) const
{
    for (const auto &record : stages_) {
        if (record.stage == stage)
            return &record;
    }
    return nullptr;
}

double
FlowTrace::totalMillis() const
{
    double total = 0.0;
    for (const auto &record : stages_)
        total += record.millis;
    return total;
}

void
FlowTrace::renderJson(std::ostream &out) const
{
    JsonWriter json(out);
    json.beginArray();
    for (const auto &record : stages_) {
        json.beginObject();
        json.key("stage").value(flowStageName(record.stage));
        json.key("millis").value(record.millis);
        json.key("metric").value(record.metric);
        json.key("metricName").value(record.metricName);
        json.endObject();
    }
    json.endArray();
}

std::string
FlowTrace::toJson() const
{
    std::ostringstream out;
    renderJson(out);
    return out.str();
}

FlowResult
DesignFlow::run(const MarkovModel &model) const
{
    obs::SpanScope root(&obs::globalTracer(), "flow.run");
    return runStages(model, FlowTrace());
}

FlowResult
DesignFlow::runOnTrace(const std::vector<int> &trace) const
{
    obs::SpanScope root(&obs::globalTracer(), "flow.run");
    obs::SpanScope span(&obs::globalTracer(), "flow.markov");
    MarkovModel model(options_.order);
    model.train(trace);
    FlowTrace flow_trace;
    recordStage(flow_trace, FlowStage::Markov, span,
                static_cast<int64_t>(model.distinctHistories()),
                "histories");
    return runStages(model, std::move(flow_trace));
}

FlowResult
DesignFlow::runStages(const MarkovModel &model, FlowTrace trace) const
{
    if (model.order() != options_.order) {
        throw std::invalid_argument(
            "DesignFlow: model order " + std::to_string(model.order()) +
            " does not match options order " +
            std::to_string(options_.order));
    }

    obs::Tracer *tracer = &obs::globalTracer();
    flowTelemetry().runs.inc();

    FlowResult out;
    out.trace = std::move(trace);
    FsmDesignResult &result = out.design;

    {
        obs::SpanScope span(tracer, "flow.patterns");
        result.patterns = definePatterns(model, options_.patterns);
        recordStage(out.trace, FlowStage::Patterns, span,
                    static_cast<int64_t>(
                        result.patterns.predictOne.size() +
                        result.patterns.predictZero.size()),
                    "specified");
    }

    {
        obs::SpanScope span(tracer, "flow.minimize");
        const TruthTable table = result.patterns.toTruthTable();
        result.cover = minimize(table, options_.minimizer);
        recordStage(out.trace, FlowStage::Minimize, span,
                    static_cast<int64_t>(result.cover.size()), "cubes");
    }

    if (result.cover.empty()) {
        // Nothing to predict 1 on: the constant machine. (Hopcroft would
        // reduce the general pipeline to this anyway; short-circuiting
        // avoids building an NFA for the empty language.) The automata
        // stages are still recorded so every FlowTrace has the same
        // shape and the state counts stay inspectable.
        result.regexText = "(empty)";
        result.beforeReduction = Dfa::constant(0);
        result.fsm = result.beforeReduction;
        result.statesSubset = 1;
        result.statesHopcroft = 1;
        result.statesFinal = 1;
        out.trace.add(FlowStage::Regex, 0.0, 0, "terms");
        out.trace.add(FlowStage::Subset, 0.0, 1, "states");
        out.trace.add(FlowStage::Hopcroft, 0.0, 1, "states");
        out.trace.add(FlowStage::StartReduce, 0.0, 1, "states");
        return out;
    }

    std::optional<Regex> regex;
    {
        obs::SpanScope span(tracer, "flow.regex");
        regex = regexFromCover(result.cover);
        result.regexText = regex->toString();
        recordStage(out.trace, FlowStage::Regex, span,
                    static_cast<int64_t>(result.cover.size()), "terms");
    }

    {
        obs::SpanScope span(tracer, "flow.subset");
        const Nfa nfa = Nfa::fromRegex(*regex);
        result.beforeReduction = Dfa::fromNfa(nfa);
        result.statesSubset = result.beforeReduction.numStates();
        recordStage(out.trace, FlowStage::Subset, span,
                    result.statesSubset, "states");
    }

    {
        obs::SpanScope span(tracer, "flow.hopcroft");
        result.beforeReduction = result.beforeReduction.minimizeHopcroft();
        result.statesHopcroft = result.beforeReduction.numStates();
        recordStage(out.trace, FlowStage::Hopcroft, span,
                    result.statesHopcroft, "states");
    }

    {
        obs::SpanScope span(tracer, "flow.start-reduce");
        if (options_.keepStartupStates) {
            result.fsm = result.beforeReduction;
        } else {
            result.fsm = result.beforeReduction.steadyStateReduce();
        }
        result.statesFinal = result.fsm.numStates();
        recordStage(out.trace, FlowStage::StartReduce, span,
                    result.statesFinal, "states");
    }
    return out;
}

} // namespace autofsm
