/**
 * @file
 * Legacy entry points of the design pipeline.
 *
 * `designFsm` / `designFromTrace` (declared in fsmgen/designer.hh)
 * predate the unified DesignRequest/DesignResponse API and remain as
 * deprecated one-line wrappers for existing callers; new code should
 * build a `DesignRequest` and call `runDesignRequest` (flow/api.hh) —
 * or a `BatchDesigner` for many requests — to get stage observability,
 * serialization and serving on top of the same artifacts.
 */

#include "flow/api.hh"
#include "fsmgen/designer.hh"

namespace autofsm
{

FsmDesignResult
designFsm(const MarkovModel &model, const FsmDesignOptions &options)
{
    DesignRequest request;
    request.model = model;
    request.options = options;
    return runDesignRequest(request).design;
}

FsmDesignResult
designFromTrace(const std::vector<int> &trace,
                const FsmDesignOptions &options)
{
    DesignRequest request;
    request.outcomes = trace;
    request.options = options;
    return runDesignRequest(request).design;
}

} // namespace autofsm
