/**
 * @file
 * Legacy entry points of the design pipeline.
 *
 * `designFsm` / `designFromTrace` (declared in fsmgen/designer.hh) predate
 * the stage-oriented DesignFlow API and remain as thin wrappers for
 * existing callers; new code should construct a DesignFlow (or a
 * BatchDesigner for many traces) to get stage observability on top of the
 * same artifacts.
 */

#include "flow/design_flow.hh"
#include "fsmgen/designer.hh"

namespace autofsm
{

FsmDesignResult
designFsm(const MarkovModel &model, const FsmDesignOptions &options)
{
    return DesignFlow(options).run(model).design;
}

FsmDesignResult
designFromTrace(const std::vector<int> &trace,
                const FsmDesignOptions &options)
{
    return DesignFlow(options).runOnTrace(trace).design;
}

} // namespace autofsm
