/**
 * @file
 * Cross-item memoization of the design flow's automata tail.
 *
 * Distinct branches (and cross-training folds) frequently produce
 * identical history partitions even when their Markov counts differ —
 * e.g. two loop branches whose tables scale together — so the
 * minimize -> regex -> NFA -> DFA -> Hopcroft -> start-reduce tail
 * would be recomputed on byte-identical inputs. `BatchDesigner`'s
 * per-batch memo only catches *identical models inside one batch*; this
 * process-wide cache is keyed on what the tail actually consumes: the
 * canonical (sorted) predict-one and don't-care sets of the
 * `PatternSets` — predict-zero is the truth table's implicit OFF-set —
 * plus the options that steer the tail (order, minimizer,
 * keepStartupStates).
 *
 * Entries are immutable and shared (`shared_ptr<const>`); a hit
 * hands back bit-identical artifacts to what the miss path computes.
 * The flow only consults the memo when the run's budget is unlimited
 * (finite budgets can legitimately alter the tail's products) and no
 * failpoint is armed (a memo hit would mask the injected fault the test
 * is driving). Hits and misses are counted in
 * `autofsm_designmemo_{hits,misses}_total`.
 *
 * When a persistent store is installed (`store::setGlobalStore`, e.g.
 * the daemon's `--store-dir`), the memo is write-through: a store also
 * commits the artifact to disk (best effort — an IO failure never fails
 * the design), and a memory miss consults the disk tier before
 * reporting a miss, re-verifying the embedded canonical key and
 * promoting disk hits into the memory memo. Designed FSMs thus survive
 * restarts and are shared between replicas pointed at one directory.
 */

#ifndef AUTOFSM_FLOW_DESIGN_MEMO_HH
#define AUTOFSM_FLOW_DESIGN_MEMO_HH

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "automata/dfa.hh"
#include "fsmgen/patterns.hh"
#include "logicmin/cover.hh"
#include "logicmin/minimize.hh"

namespace autofsm
{

/** What the memoized tail depends on, canonicalized. */
struct DesignMemoKey
{
    int order = 0;
    int minimizer = 0; ///< static_cast<int>(MinimizeAlgo)
    bool keepStartupStates = false;
    /** Sorted predict-one set (the truth table's ON-set). */
    std::vector<uint32_t> predictOne;
    /** Sorted don't-care set. */
    std::vector<uint32_t> dontCare;

    bool operator==(const DesignMemoKey &other) const = default;
};

/** Build the key for @p patterns under the given tail options. */
DesignMemoKey designMemoKey(const PatternSets &patterns,
                            MinimizeAlgo minimizer,
                            bool keep_startup_states);

/** The cached artifacts of one tail execution. */
struct DesignMemoEntry
{
    Cover cover = Cover::forInputs(1);
    std::string regexText;
    Dfa beforeReduction;
    Dfa fsm;
    int statesSubset = 0;
    int statesHopcroft = 0;
    int statesFinal = 0;
    /** Stage timings of the run that computed this entry (name,
     *  milliseconds); persisted with the disk artifact, informational. */
    std::vector<std::pair<std::string, double>> stageMillis;
};

/**
 * The key's 64-bit content hash — the address the persistent store
 * files a design artifact under. The full key is embedded alongside the
 * artifact and re-verified on load, so a hash collision reads as a
 * miss, never as a wrong answer.
 */
uint64_t designMemoKeyHash(const DesignMemoKey &key);

/** Point-in-time tallies of the process-wide memo. */
struct DesignMemoStats
{
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t insertions = 0; ///< stores accepted (entries can't exceed capacity)
    size_t entries = 0;
    size_t capacity = 0;
};

/**
 * Look @p key up; nullptr on miss. Thread-safe. Every call counts one
 * hit or one miss (call only for memo-eligible runs).
 */
std::shared_ptr<const DesignMemoEntry>
designMemoLookup(const DesignMemoKey &key);

/**
 * Insert @p entry under @p key. A duplicate store (two threads racing
 * on the same key) keeps the first entry; stores beyond the capacity
 * are dropped. Thread-safe.
 */
void designMemoStore(DesignMemoKey key,
                     std::shared_ptr<const DesignMemoEntry> entry);

/** Current tallies (tests and benches). */
DesignMemoStats designMemoStats();

/** Drop every entry and reset the tallies (tests and benches). */
void clearDesignMemo();

/** Change the entry cap (default 4096). Does not evict existing entries. */
void designMemoSetCapacity(size_t capacity);

} // namespace autofsm

#endif // AUTOFSM_FLOW_DESIGN_MEMO_HH
