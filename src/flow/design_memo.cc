#include "flow/design_memo.hh"

#include <mutex>
#include <unordered_map>
#include <utility>

#include "obs/metrics.hh"
#include "store/store.hh"

namespace autofsm
{

namespace
{

/** splitmix64 finalizer (same mixing step the batch memo uses). */
uint64_t
mix64(uint64_t x)
{
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

/** Sequential hash of a sorted set (order is canonical, so keep it). */
uint64_t
hashSet(uint64_t seed, const std::vector<uint32_t> &values)
{
    uint64_t h = mix64(seed ^ values.size());
    for (const uint32_t v : values)
        h = mix64(h ^ v);
    return h;
}

uint64_t
hashKey(const DesignMemoKey &key)
{
    uint64_t h = mix64(static_cast<uint64_t>(key.order));
    h = mix64(h ^ static_cast<uint64_t>(key.minimizer));
    h = mix64(h ^ static_cast<uint64_t>(key.keepStartupStates));
    h = hashSet(h, key.predictOne);
    return hashSet(h, key.dontCare);
}

struct MemoTelemetry
{
    obs::Counter hits;
    obs::Counter misses;
    obs::Gauge entries;
};

MemoTelemetry &
memoTelemetry()
{
    static MemoTelemetry telemetry = [] {
        obs::MetricsRegistry &registry = obs::globalMetrics();
        MemoTelemetry t;
        t.hits = registry.counter(
            "autofsm_designmemo_hits_total",
            "Design-flow tails served from the cross-item stage memo.");
        t.misses = registry.counter(
            "autofsm_designmemo_misses_total",
            "Memo-eligible design-flow tails that had to be computed.");
        t.entries = registry.gauge(
            "autofsm_designmemo_entries",
            "Entries currently held by the design-stage memo.");
        return t;
    }();
    return telemetry;
}

/** The process-wide memo: hash buckets with exact-key confirmation. */
struct Memo
{
    std::mutex mutex;
    std::unordered_map<
        uint64_t,
        std::vector<std::pair<DesignMemoKey,
                              std::shared_ptr<const DesignMemoEntry>>>>
        buckets;
    size_t entries = 0;
    size_t capacity = 4096;
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t insertions = 0;
};

Memo &
memo()
{
    static Memo instance;
    return instance;
}

/** Memory entry -> persistent artifact (key embedded for re-check). */
store::DesignArtifact
toArtifact(const DesignMemoKey &key, const DesignMemoEntry &entry)
{
    store::DesignArtifact artifact;
    artifact.order = key.order;
    artifact.minimizer = key.minimizer;
    artifact.keepStartupStates = key.keepStartupStates;
    artifact.predictOne = key.predictOne;
    artifact.dontCare = key.dontCare;
    artifact.cover = entry.cover;
    artifact.regexText = entry.regexText;
    artifact.beforeReduction = entry.beforeReduction;
    artifact.fsm = entry.fsm;
    artifact.statesSubset = entry.statesSubset;
    artifact.statesHopcroft = entry.statesHopcroft;
    artifact.statesFinal = entry.statesFinal;
    artifact.stageMillis = entry.stageMillis;
    return artifact;
}

/**
 * Disk-tier read-through: load the artifact addressed by @p key's hash
 * and confirm its embedded canonical key is *exactly* @p key — the file
 * name is only a 64-bit address, so a collision must read as a miss.
 * Any store failure (including injected read faults) is a miss too.
 */
std::shared_ptr<const DesignMemoEntry>
loadFromStore(const DesignMemoKey &key, uint64_t hash)
{
    const std::shared_ptr<store::ArtifactStore> disk = store::globalStore();
    if (!disk)
        return nullptr;
    std::optional<store::DesignArtifact> artifact;
    try {
        artifact = disk->loadDesign(hash);
    } catch (...) {
        return nullptr;
    }
    if (!artifact)
        return nullptr;
    if (artifact->order != key.order ||
        artifact->minimizer != key.minimizer ||
        artifact->keepStartupStates != key.keepStartupStates ||
        artifact->predictOne != key.predictOne ||
        artifact->dontCare != key.dontCare) {
        return nullptr; // hash collision: not our key
    }
    auto entry = std::make_shared<DesignMemoEntry>();
    entry->cover = std::move(artifact->cover);
    entry->regexText = std::move(artifact->regexText);
    entry->beforeReduction = std::move(artifact->beforeReduction);
    entry->fsm = std::move(artifact->fsm);
    entry->statesSubset = artifact->statesSubset;
    entry->statesHopcroft = artifact->statesHopcroft;
    entry->statesFinal = artifact->statesFinal;
    entry->stageMillis = std::move(artifact->stageMillis);
    return entry;
}

/** Best-effort write-through; never fails the caller. */
void
writeToStore(const DesignMemoKey &key, uint64_t hash,
             const DesignMemoEntry &entry)
{
    const std::shared_ptr<store::ArtifactStore> disk = store::globalStore();
    if (!disk)
        return;
    try {
        disk->putDesign(hash, toArtifact(key, entry));
    } catch (...) {
        // Injected mid-commit crash or real IO failure: the store has
        // already logged and counted it; the design result stands.
    }
}

} // anonymous namespace

uint64_t
designMemoKeyHash(const DesignMemoKey &key)
{
    return hashKey(key);
}

DesignMemoKey
designMemoKey(const PatternSets &patterns, MinimizeAlgo minimizer,
              bool keep_startup_states)
{
    DesignMemoKey key;
    key.order = patterns.order;
    key.minimizer = static_cast<int>(minimizer);
    key.keepStartupStates = keep_startup_states;
    key.predictOne = patterns.predictOne;
    key.dontCare = patterns.dontCare;
    return key;
}

namespace
{

/** Insert into the memory tier only (shared by store and promotion). */
void
insertMemory(DesignMemoKey key, uint64_t hash,
             std::shared_ptr<const DesignMemoEntry> entry)
{
    Memo &m = memo();
    size_t entries;
    {
        std::lock_guard<std::mutex> lock(m.mutex);
        if (m.entries >= m.capacity)
            return;
        auto &bucket = m.buckets[hash];
        for (const auto &[stored, existing] : bucket) {
            if (stored == key)
                return; // first store wins; entries are equivalent
        }
        bucket.emplace_back(std::move(key), std::move(entry));
        ++m.entries;
        ++m.insertions;
        entries = m.entries;
    }
    memoTelemetry().entries.set(static_cast<double>(entries));
}

} // anonymous namespace

std::shared_ptr<const DesignMemoEntry>
designMemoLookup(const DesignMemoKey &key)
{
    const uint64_t hash = hashKey(key);
    Memo &m = memo();
    std::shared_ptr<const DesignMemoEntry> found;
    {
        std::lock_guard<std::mutex> lock(m.mutex);
        const auto it = m.buckets.find(hash);
        if (it != m.buckets.end()) {
            for (const auto &[stored, entry] : it->second) {
                if (stored == key) {
                    found = entry;
                    break;
                }
            }
        }
    }
    if (!found) {
        // Memory miss: read through to the disk tier and promote, so
        // the next lookup for this key is a memory hit.
        found = loadFromStore(key, hash);
        if (found)
            insertMemory(key, hash, found);
    }
    {
        std::lock_guard<std::mutex> lock(m.mutex);
        if (found)
            ++m.hits;
        else
            ++m.misses;
    }
    if (found)
        memoTelemetry().hits.inc();
    else
        memoTelemetry().misses.inc();
    return found;
}

void
designMemoStore(DesignMemoKey key,
                std::shared_ptr<const DesignMemoEntry> entry)
{
    const uint64_t hash = hashKey(key);
    writeToStore(key, hash, *entry);
    insertMemory(std::move(key), hash, std::move(entry));
}

DesignMemoStats
designMemoStats()
{
    Memo &m = memo();
    std::lock_guard<std::mutex> lock(m.mutex);
    DesignMemoStats stats;
    stats.hits = m.hits;
    stats.misses = m.misses;
    stats.insertions = m.insertions;
    stats.entries = m.entries;
    stats.capacity = m.capacity;
    return stats;
}

void
clearDesignMemo()
{
    Memo &m = memo();
    {
        std::lock_guard<std::mutex> lock(m.mutex);
        m.buckets.clear();
        m.entries = 0;
        m.hits = 0;
        m.misses = 0;
        m.insertions = 0;
    }
    memoTelemetry().entries.set(0.0);
}

void
designMemoSetCapacity(size_t capacity)
{
    Memo &m = memo();
    std::lock_guard<std::mutex> lock(m.mutex);
    m.capacity = capacity;
}

} // namespace autofsm
