/**
 * @file
 * Resource budgets and the structured error taxonomy of the design flow.
 *
 * Subset construction can explode exponentially and minimization cost
 * varies wildly per benchmark (Sherwood & Calder, ISCA 2001, §4), so a
 * production flow must be able to *bound* every stage instead of stalling
 * or dying on a pathological input. `FlowBudget` carries the per-stage
 * limits inside `FsmDesignOptions`; exceeding one raises a `FlowError`
 * with a machine-readable {stage, kind, detail} triple that the
 * degradation ladder in `DesignFlow` and the retry policy in
 * `BatchDesigner` classify, instead of an ad-hoc `std::runtime_error`.
 *
 * Header-only on purpose: the enforcement points live below the flow in
 * the layering (logicmin's cover loop, automata's subset construction),
 * and a header-only taxonomy lets them throw the same typed error without
 * a link dependency on the flow library.
 */

#ifndef AUTOFSM_FLOW_BUDGET_HH
#define AUTOFSM_FLOW_BUDGET_HH

#include <chrono>
#include <cstddef>
#include <stdexcept>
#include <string>

namespace autofsm
{

/** Machine-readable classification of a design-flow failure. */
enum class ErrorKind
{
    BudgetExceeded,   ///< a configured resource budget was hit
    DeadlineExceeded, ///< the wall-clock deadline passed
    InvalidInput,     ///< malformed model / trace / options
    Injected,         ///< raised by a fault-injection site
    Internal,         ///< unexpected invariant failure
};

/** Stable lower-case name of @p kind (used in reports and metrics). */
inline const char *
errorKindName(ErrorKind kind)
{
    switch (kind) {
      case ErrorKind::BudgetExceeded: return "budget-exceeded";
      case ErrorKind::DeadlineExceeded: return "deadline-exceeded";
      case ErrorKind::InvalidInput: return "invalid-input";
      case ErrorKind::Injected: return "injected";
      case ErrorKind::Internal: return "internal";
    }
    return "?";
}

/**
 * True when a failure of @p kind may succeed on a retry with an escalated
 * budget: resource and deadline exhaustion respond to bigger budgets, and
 * injected faults model transient infrastructure errors. Invalid input
 * and internal invariant failures are terminal — retrying cannot help.
 */
inline bool
errorKindRetryable(ErrorKind kind)
{
    switch (kind) {
      case ErrorKind::BudgetExceeded:
      case ErrorKind::DeadlineExceeded:
      case ErrorKind::Injected:
        return true;
      case ErrorKind::InvalidInput:
      case ErrorKind::Internal:
        return false;
    }
    return false;
}

/** Structured design-flow failure: which stage, what kind, and detail. */
class FlowError : public std::runtime_error
{
  public:
    FlowError(std::string stage, ErrorKind kind, std::string detail)
        : std::runtime_error("flow[" + stage + "] " +
                             errorKindName(kind) + ": " + detail),
          stage_(std::move(stage)), kind_(kind), detail_(std::move(detail))
    {
    }

    /** Stage name ("minimize", "subset", ...; see flowStageName). */
    const std::string &stage() const { return stage_; }

    ErrorKind kind() const { return kind_; }

    const std::string &detail() const { return detail_; }

  private:
    std::string stage_;
    ErrorKind kind_;
    std::string detail_;
};

/**
 * Per-stage resource budgets of one design-flow run. Every limit treats
 * zero as "unlimited", which is the default: a default-constructed
 * budget changes nothing about the flow's behavior or output.
 */
struct FlowBudget
{
    /** Wall-clock deadline for the whole run, milliseconds. */
    double deadlineMillis = 0.0;
    /** Max Thompson NFA states entering subset construction. */
    int maxNfaStates = 0;
    /** Max DFA states minted during subset construction (checked inside
     *  the construction loop, so an exploding subset stops early). */
    int maxDfaStates = 0;
    /** Max EXPAND/IRREDUNDANT/REDUCE iterations of the espresso loop. */
    int maxEspressoIterations = 0;
    /** Max ON+DC minterms a minimization engine will accept. */
    size_t maxMinterms = 0;

    /** True when every limit is "unlimited" (the default). */
    bool
    unlimited() const
    {
        return deadlineMillis <= 0.0 && maxNfaStates <= 0 &&
            maxDfaStates <= 0 && maxEspressoIterations <= 0 &&
            maxMinterms == 0;
    }

    /**
     * The budget a retry attempt runs under: every finite limit scaled
     * up by @p factor (>= 1), unlimited limits staying unlimited.
     */
    FlowBudget
    escalated(double factor) const
    {
        FlowBudget out = *this;
        if (factor < 1.0)
            factor = 1.0;
        auto scale = [factor](auto limit) {
            using T = decltype(limit);
            return limit > T{0}
                ? static_cast<T>(static_cast<double>(limit) * factor)
                : limit;
        };
        out.deadlineMillis = scale(deadlineMillis);
        out.maxNfaStates = scale(maxNfaStates);
        out.maxDfaStates = scale(maxDfaStates);
        out.maxEspressoIterations = scale(maxEspressoIterations);
        out.maxMinterms = scale(maxMinterms);
        return out;
    }
};

/**
 * Wall-clock deadline of one flow run. Constructing with a non-positive
 * limit disables the deadline entirely — no clock is ever read — so the
 * default budget stays free.
 */
class Deadline
{
  public:
    explicit Deadline(double limit_millis) : limit_(limit_millis)
    {
        if (limit_ > 0.0)
            start_ = std::chrono::steady_clock::now();
    }

    /** @throws FlowError{stage, DeadlineExceeded} once the limit passed. */
    void
    check(const char *stage) const
    {
        if (limit_ <= 0.0)
            return;
        const double elapsed =
            std::chrono::duration<double, std::milli>(
                std::chrono::steady_clock::now() - start_)
                .count();
        if (elapsed > limit_) {
            throw FlowError(stage, ErrorKind::DeadlineExceeded,
                            "elapsed " + std::to_string(elapsed) +
                                " ms > deadline " +
                                std::to_string(limit_) + " ms");
        }
    }

  private:
    double limit_;
    std::chrono::steady_clock::time_point start_{};
};

} // namespace autofsm

#endif // AUTOFSM_FLOW_BUDGET_HH
