/**
 * @file
 * Stage-oriented view of the Section 4 design flow.
 *
 * `DesignFlow` runs the same pipeline as the legacy `designFsm` free
 * function (which is now a thin wrapper over it), but decomposes it into
 * named, individually observable stages: markov (when starting from a raw
 * trace), patterns, minimize, regex, subset construction (nfa->dfa),
 * Hopcroft and start-state reduction. Each run yields the usual
 * `FsmDesignResult` plus a `FlowTrace` carrying per-stage wall-clock time
 * and a stage-specific size metric, so benches and the batch designer can
 * report where time and states go without instrumenting the flow
 * themselves.
 */

#ifndef AUTOFSM_FLOW_DESIGN_FLOW_HH
#define AUTOFSM_FLOW_DESIGN_FLOW_HH

#include <iosfwd>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "fsmgen/designer.hh"
#include "fsmgen/markov.hh"

namespace autofsm
{

/** The pipeline stages, in execution order. */
enum class FlowStage
{
    Markov,      ///< train the Nth-order model (trace entry point only)
    Patterns,    ///< partition histories into 1 / 0 / don't-care sets
    Minimize,    ///< two-level logic minimization of the predict-1 set
    Regex,       ///< cover -> (0|1)*(t1|...|tk) regular expression
    Subset,      ///< Thompson NFA + subset construction (nfa->dfa)
    Hopcroft,    ///< DFA minimization
    StartReduce, ///< start-state (transient start-up) reduction
};

/** Stable lower-case name of @p stage (used in reports and JSON). */
const char *flowStageName(FlowStage stage);

/** Inverse of flowStageName; nullopt for an unknown name. */
std::optional<FlowStage> flowStageFromName(std::string_view name);

/** One executed stage: how long it took and how big its product is. */
struct StageRecord
{
    FlowStage stage = FlowStage::Patterns;
    /** Wall-clock time of the stage, milliseconds. */
    double millis = 0.0;
    /** Stage-specific size metric (see metricName). */
    int64_t metric = 0;
    /** What the metric counts: "states", "cubes", "histories", ... */
    const char *metricName = "";
};

/**
 * The per-stage observations of one design-flow run.
 *
 * Since the telemetry subsystem landed this is a thin per-run view over
 * the span tree: each record's wall-clock is the measured duration of
 * the corresponding `obs::SpanScope` the flow opened for that stage
 * (spans also stream into `obs::currentTracer()` when tracing is on).
 * The trace itself stays a plain value so results remain comparable and
 * serializable with telemetry compiled out.
 */
class FlowTrace
{
  public:
    void
    add(FlowStage stage, double millis, int64_t metric,
        const char *metric_name)
    {
        stages_.push_back({stage, millis, metric, metric_name});
    }

    const std::vector<StageRecord> &stages() const { return stages_; }

    /**
     * Record that a degraded path was taken, as "stage:kind" (e.g.
     * "minimize:exact", "subset:saturating-counter"). Appended in
     * execution order by the flow's fallback ladders.
     */
    void
    noteFallback(std::string fallback)
    {
        fallbacks_.push_back(std::move(fallback));
    }

    /** True when any fallback path was taken during this run. */
    bool degraded() const { return !fallbacks_.empty(); }

    /** The fallback paths taken, in execution order (usually empty). */
    const std::vector<std::string> &fallbacks() const { return fallbacks_; }

    /** Record for @p stage, or nullptr if the stage did not run. */
    const StageRecord *find(FlowStage stage) const;

    /** Total wall-clock across all recorded stages, milliseconds. */
    double totalMillis() const;

    /** Emit as a JSON array of {stage, millis, metric, metricName}. */
    void renderJson(std::ostream &out) const;
    std::string toJson() const;

  private:
    std::vector<StageRecord> stages_;
    std::vector<std::string> fallbacks_;
};

/** One run's artifacts plus its stage observations. */
struct FlowResult
{
    FsmDesignResult design;
    FlowTrace trace;
    /**
     * True when the minimize->...->reduce tail was served from the
     * design-stage memo (flow/design_memo.hh). The artifacts are
     * bit-identical to a computed tail; the tail's stage records carry
     * zero wall-clock, like the empty-cover short-circuit.
     */
    bool tailFromMemo = false;
};

/**
 * The redesigned front door of the FSM design pipeline.
 *
 * A `DesignFlow` is an immutable configuration object; `run` /
 * `runOnTrace` may be called concurrently from many threads on the same
 * instance (the flow itself holds no mutable state).
 *
 * **Resilience.** The flow enforces the resource budgets carried in
 * `options().budget` (flow/budget.hh) and degrades gracefully instead of
 * failing where a cheaper product exists:
 *
 *  - minimizer failure or budget overrun falls back espresso ->
 *    Quine-McCluskey -> unminimized minterm cover;
 *  - automata failure or budget overrun (NFA/DFA state budgets) falls
 *    back to the classic 2-bit saturating-counter machine
 *    (`Dfa::saturatingCounter`), the paper's baseline predictor.
 *
 * Every taken fallback is recorded in the run's `FlowTrace`
 * (`degraded()` / `fallbacks()`) and counted in
 * `autofsm_flow_fallbacks_total{stage,kind}`. Only deadline expiry
 * (`FlowError` with `DeadlineExceeded`) and pre-flight input validation
 * propagate out of `run`; `BatchDesigner` classifies those into
 * retryable vs terminal failures. With a default (unlimited) budget and
 * no failpoints configured the flow's behavior and output are
 * bit-identical to the non-degrading pipeline.
 */
class DesignFlow
{
  public:
    explicit DesignFlow(FsmDesignOptions options = {})
        : options_(options)
    {
    }

    const FsmDesignOptions &options() const { return options_; }

    /**
     * Run the flow on a pre-built Markov model.
     *
     * @throws std::invalid_argument if the model's order does not match
     *         options().order (the legacy designFsm asserted instead;
     *         throwing lets the batch designer isolate poisoned items).
     */
    FlowResult run(const MarkovModel &model) const;

    /** Train a model on @p trace (recorded as the markov stage), then run. */
    FlowResult runOnTrace(const std::vector<int> &trace) const;

  private:
    FlowResult runStages(const MarkovModel &model, FlowTrace trace,
                         const Deadline &deadline) const;
    void minimizeFallback(const TruthTable &table,
                          const MinimizeLimits &limits,
                          FsmDesignResult &result, FlowTrace &trace) const;
    void automataFallback(FsmDesignResult &result, FlowTrace &trace) const;

    FsmDesignOptions options_;
};

} // namespace autofsm

#endif // AUTOFSM_FLOW_DESIGN_FLOW_HH
