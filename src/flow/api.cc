#include "flow/api.hh"

#include <algorithm>
#include <atomic>
#include <sstream>
#include <stdexcept>

#include "automata/dfa_io.hh"
#include "fsmgen/profile.hh"
#include "sim/bitsliced.hh"
#include "support/failpoint.hh"
#include "support/json.hh"

namespace autofsm
{

namespace
{

std::atomic<TraceRefResolver> g_traceResolver{nullptr};

constexpr int kMinOrder = 1;
constexpr int kMaxOrder = 24; // MarkovModel's packed-history ceiling
constexpr uint64_t kMaxTraceBranches = 100u * 1000 * 1000;

const char *
minimizeAlgoName(MinimizeAlgo algo)
{
    switch (algo) {
      case MinimizeAlgo::Auto: return "auto";
      case MinimizeAlgo::Exact: return "exact";
      case MinimizeAlgo::Heuristic: return "heuristic";
    }
    return "?";
}

MinimizeAlgo
minimizeAlgoFromName(const std::string &name)
{
    if (name == "auto")
        return MinimizeAlgo::Auto;
    if (name == "exact")
        return MinimizeAlgo::Exact;
    if (name == "heuristic")
        return MinimizeAlgo::Heuristic;
    throw std::invalid_argument("unknown minimizer '" + name + "'");
}

/** Throw for any member of @p value outside @p known. */
void
rejectUnknownFields(const JsonValue &value,
                    std::initializer_list<std::string_view> known,
                    const char *what)
{
    for (const auto &[key, member] : value.members()) {
        (void)member;
        if (std::find(known.begin(), known.end(), key) == known.end()) {
            throw std::invalid_argument(std::string(what) +
                                        ": unknown field '" + key + "'");
        }
    }
}

void
renderBudget(JsonWriter &json, const FlowBudget &budget)
{
    json.beginObject();
    json.key("deadlineMillis").value(budget.deadlineMillis);
    json.key("maxNfaStates").value(budget.maxNfaStates);
    json.key("maxDfaStates").value(budget.maxDfaStates);
    json.key("maxEspressoIterations").value(budget.maxEspressoIterations);
    json.key("maxMinterms").value(static_cast<uint64_t>(budget.maxMinterms));
    json.endObject();
}

void
renderOptions(JsonWriter &json, const FsmDesignOptions &options)
{
    json.beginObject();
    json.key("order").value(options.order);
    json.key("minimizer").value(minimizeAlgoName(options.minimizer));
    json.key("keepStartupStates").value(options.keepStartupStates);
    json.key("flatProfiling").value(options.flatProfiling);
    json.key("memoizeStages").value(options.memoizeStages);
    json.key("patterns");
    json.beginObject();
    json.key("threshold").value(options.patterns.threshold);
    json.key("dontCareMass").value(options.patterns.dontCareMass);
    json.key("unseenAreDontCare").value(options.patterns.unseenAreDontCare);
    json.endObject();
    json.key("budget");
    renderBudget(json, options.budget);
    json.endObject();
}

void
renderModel(JsonWriter &json, const MarkovModel &model)
{
    // The sparse table iterates in hash order; sort by history so equal
    // models serialize to equal bytes (the repo-wide determinism rule).
    std::vector<std::pair<uint32_t, HistoryCounts>> entries(
        model.table().begin(), model.table().end());
    std::sort(entries.begin(), entries.end(),
              [](const auto &a, const auto &b) { return a.first < b.first; });
    json.beginObject();
    json.key("order").value(model.order());
    json.key("entries");
    json.beginArray();
    for (const auto &[history, counts] : entries) {
        json.beginArray();
        json.value(static_cast<uint64_t>(history));
        json.value(counts.ones);
        json.value(counts.total);
        json.endArray();
    }
    json.endArray();
    json.endObject();
}

MarkovModel
modelFromJson(const JsonValue &value)
{
    rejectUnknownFields(value, {"order", "entries"}, "model");
    const JsonValue *order = value.find("order");
    if (order == nullptr)
        throw std::invalid_argument("model: missing 'order'");
    const int64_t n = order->asInt();
    if (n < kMinOrder || n > kMaxOrder) {
        throw std::invalid_argument("model: order " + std::to_string(n) +
                                    " out of [1, 24]");
    }
    MarkovModel model(static_cast<int>(n));
    if (const JsonValue *entries = value.find("entries")) {
        for (const JsonValue &entry : entries->items()) {
            const auto &triple = entry.items();
            if (triple.size() != 3) {
                throw std::invalid_argument(
                    "model: entry is not a [history, ones, total] triple");
            }
            const uint64_t history = triple[0].asUint();
            const uint64_t ones = triple[1].asUint();
            const uint64_t total = triple[2].asUint();
            if (n < 32 && history >= (uint64_t{1} << n)) {
                throw std::invalid_argument(
                    "model: history " + std::to_string(history) +
                    " does not fit order " + std::to_string(n));
            }
            if (ones > total) {
                throw std::invalid_argument(
                    "model: ones > total for history " +
                    std::to_string(history));
            }
            model.addCounts(static_cast<uint32_t>(history), ones, total);
        }
    }
    return model;
}

void
renderStageSummaries(JsonWriter &json, const std::vector<StageSummary> &stages)
{
    json.beginArray();
    for (const StageSummary &stage : stages) {
        json.beginObject();
        json.key("stage").value(stage.stage);
        json.key("millis").value(stage.millis);
        json.key("metric").value(stage.metric);
        json.key("metricName").value(stage.metricName);
        json.endObject();
    }
    json.endArray();
}

StageSummary
stageSummaryFromJson(const JsonValue &value)
{
    rejectUnknownFields(value, {"stage", "millis", "metric", "metricName"},
                        "stage");
    StageSummary stage;
    if (const JsonValue *v = value.find("stage"))
        stage.stage = v->asString();
    if (const JsonValue *v = value.find("millis"))
        stage.millis = v->asNumber();
    if (const JsonValue *v = value.find("metric"))
        stage.metric = v->asInt();
    if (const JsonValue *v = value.find("metricName"))
        stage.metricName = v->asString();
    return stage;
}

} // anonymous namespace

const char *
requestClassName(RequestClass klass)
{
    switch (klass) {
      case RequestClass::Interactive: return "interactive";
      case RequestClass::Batch: return "batch";
      case RequestClass::Bulk: return "bulk";
    }
    return "?";
}

std::optional<RequestClass>
requestClassFromName(std::string_view name)
{
    if (name == "interactive")
        return RequestClass::Interactive;
    if (name == "batch")
        return RequestClass::Batch;
    if (name == "bulk")
        return RequestClass::Bulk;
    return std::nullopt;
}

FlowBudget
budgetForClass(RequestClass klass)
{
    FlowBudget budget; // all-zero: unlimited
    switch (klass) {
      case RequestClass::Interactive:
        budget.deadlineMillis = 2000.0;
        budget.maxNfaStates = 4096;
        budget.maxDfaStates = 8192;
        budget.maxEspressoIterations = 64;
        budget.maxMinterms = size_t{1} << 16;
        break;
      case RequestClass::Batch:
        budget.deadlineMillis = 15000.0;
        budget.maxNfaStates = 16384;
        budget.maxDfaStates = 65536;
        budget.maxEspressoIterations = 256;
        budget.maxMinterms = size_t{1} << 20;
        break;
      case RequestClass::Bulk:
        break; // unlimited; bulk pays in queue priority, not budget
    }
    return budget;
}

void
DesignRequest::validate() const
{
    const int sources = (traceRef.empty() ? 0 : 1) +
        (outcomes.empty() ? 0 : 1) + (model.has_value() ? 1 : 0);
    if (sources != 1) {
        throw std::invalid_argument(
            "DesignRequest: exactly one of traceRef / outcomes / model "
            "must be set (got " +
            std::to_string(sources) + ")");
    }
    if (options.order < kMinOrder || options.order > kMaxOrder) {
        throw std::invalid_argument(
            "DesignRequest: order " + std::to_string(options.order) +
            " out of [1, 24]");
    }
    if (options.patterns.threshold < 0.0 ||
        options.patterns.threshold > 1.0) {
        throw std::invalid_argument(
            "DesignRequest: patterns.threshold out of [0, 1]");
    }
    if (options.patterns.dontCareMass < 0.0 ||
        options.patterns.dontCareMass > 1.0) {
        throw std::invalid_argument(
            "DesignRequest: patterns.dontCareMass out of [0, 1]");
    }
    if (!traceRef.empty() &&
        (traceBranches == 0 || traceBranches > kMaxTraceBranches)) {
        throw std::invalid_argument(
            "DesignRequest: traceBranches " +
            std::to_string(traceBranches) + " out of [1, " +
            std::to_string(kMaxTraceBranches) + "]");
    }
    for (const int outcome : outcomes) {
        if (outcome != 0 && outcome != 1) {
            throw std::invalid_argument(
                "DesignRequest: outcome " + std::to_string(outcome) +
                " is not a 0/1 bit");
        }
    }
    if (evaluate && model.has_value()) {
        throw std::invalid_argument(
            "DesignRequest: evaluate requires an outcome-bearing source "
            "(traceRef or outcomes); a pre-trained model carries no "
            "stream to replay");
    }
}

void
setTraceRefResolver(TraceRefResolver resolver)
{
    g_traceResolver.store(resolver, std::memory_order_release);
}

TraceRefResolver
traceRefResolver()
{
    return g_traceResolver.load(std::memory_order_acquire);
}

MarkovModel
resolveRequestModel(const DesignRequest &request)
{
    request.validate();
    if (request.model)
        return *request.model;

    std::vector<int> resolved;
    const std::vector<int> *outcomes = &request.outcomes;
    if (!request.traceRef.empty()) {
        const TraceRefResolver resolver = traceRefResolver();
        if (resolver == nullptr) {
            throw std::invalid_argument(
                "DesignRequest: traceRef '" + request.traceRef +
                "' given but no trace resolver is installed");
        }
        resolved = resolver(request.traceRef, request.traceBranches);
        outcomes = &resolved;
    }
    if (request.options.flatProfiling)
        return trainMarkovModel(*outcomes, request.options.order);
    MarkovModel model(request.options.order);
    model.train(*outcomes);
    return model;
}

std::vector<int>
resolveRequestOutcomes(const DesignRequest &request)
{
    if (!request.outcomes.empty())
        return request.outcomes;
    if (request.traceRef.empty()) {
        throw std::invalid_argument(
            "DesignRequest: no outcome stream to evaluate (source is a "
            "pre-trained model)");
    }
    const TraceRefResolver resolver = traceRefResolver();
    if (resolver == nullptr) {
        throw std::invalid_argument(
            "DesignRequest: traceRef '" + request.traceRef +
            "' given but no trace resolver is installed");
    }
    return resolver(request.traceRef, request.traceBranches);
}

FlowResult
runDesignRequest(const DesignRequest &request)
{
    request.validate();
    const DesignFlow flow(request.options);
    if (request.model)
        return flow.run(*request.model);
    if (!request.outcomes.empty())
        return flow.runOnTrace(request.outcomes);
    const TraceRefResolver resolver = traceRefResolver();
    if (resolver == nullptr) {
        throw std::invalid_argument(
            "DesignRequest: traceRef '" + request.traceRef +
            "' given but no trace resolver is installed");
    }
    return flow.runOnTrace(
        resolver(request.traceRef, request.traceBranches));
}

DesignResponse
designResponseFromFlow(const DesignRequest &request, const FlowResult &flow)
{
    DesignResponse response;
    response.id = request.id;
    response.ok = true;
    response.artifact = dfaToText(flow.design.fsm);
    response.statesSubset = flow.design.statesSubset;
    response.statesHopcroft = flow.design.statesHopcroft;
    response.statesFinal = flow.design.statesFinal;
    response.coverCubes = static_cast<int64_t>(flow.design.cover.size());
    response.designMillis = flow.trace.totalMillis();
    response.fromMemo = flow.tailFromMemo;
    response.degraded = flow.trace.degraded();
    response.fallbacks = flow.trace.fallbacks();
    for (const StageRecord &record : flow.trace.stages()) {
        StageSummary stage;
        stage.stage = flowStageName(record.stage);
        stage.millis = record.millis;
        stage.metric = record.metric;
        stage.metricName = record.metricName;
        response.stages.push_back(std::move(stage));
    }
    return response;
}

DesignResponse
designService(const DesignRequest &request)
{
    DesignResponse response;
    response.id = request.id;
    try {
        const FlowResult flow = runDesignRequest(request);
        response = designResponseFromFlow(request, flow);
        if (request.evaluate) {
            // Single-request evaluation path; the batch engine groups
            // shared-stream requests into one multi-lane replay instead.
            const std::vector<int> outcomes =
                resolveRequestOutcomes(request);
            const std::vector<uint64_t> words = packOutcomeWords(outcomes);
            const std::vector<BitslicedMachine> machines = {
                {&flow.design.fsm, nullptr}};
            const std::vector<uint64_t> misses = replayMachinesBitsliced(
                machines, words.data(), outcomes.size());
            response.evaluated = true;
            response.evalBranches = outcomes.size();
            response.evalMisses = misses[0];
        }
        return response;
    } catch (const FlowError &e) {
        response.error = {e.stage(), errorKindName(e.kind()), e.detail()};
    } catch (const InjectedFault &e) {
        response.error = {e.site(), errorKindName(ErrorKind::Injected),
                          e.what()};
    } catch (const std::invalid_argument &e) {
        response.error = {"api", errorKindName(ErrorKind::InvalidInput),
                          e.what()};
    } catch (const std::exception &e) {
        response.error = {"api", errorKindName(ErrorKind::Internal),
                          e.what()};
    }
    return response;
}

// --- JSON serialization ------------------------------------------------

std::string
toJson(const FlowBudget &budget)
{
    std::ostringstream out;
    JsonWriter json(out);
    renderBudget(json, budget);
    return out.str();
}

std::string
toJson(const FsmDesignOptions &options)
{
    std::ostringstream out;
    JsonWriter json(out);
    renderOptions(json, options);
    return out.str();
}

std::string
toJson(const DesignRequest &request)
{
    std::ostringstream out;
    JsonWriter json(out);
    json.beginObject();
    json.key("id").value(request.id);
    json.key("tenant").value(request.tenant);
    json.key("class").value(requestClassName(request.requestClass));
    if (!request.traceRef.empty()) {
        json.key("traceRef").value(request.traceRef);
        json.key("traceBranches").value(request.traceBranches);
    }
    if (!request.outcomes.empty()) {
        json.key("outcomes");
        json.beginArray();
        for (const int outcome : request.outcomes)
            json.value(outcome);
        json.endArray();
    }
    if (request.model) {
        json.key("model");
        renderModel(json, *request.model);
    }
    json.key("options");
    renderOptions(json, request.options);
    // Emitted only when set so pre-tracing servers keep accepting the
    // common case under their strict parsers.
    if (request.trace)
        json.key("trace").value(true);
    // Same compatibility rule as trace: only opted-in requests carry it.
    if (request.evaluate)
        json.key("evaluate").value(true);
    json.endObject();
    return out.str();
}

std::string
toJson(const DesignResponse &response)
{
    std::ostringstream out;
    JsonWriter json(out);
    json.beginObject();
    json.key("id").value(response.id);
    json.key("ok").value(response.ok);
    json.key("artifact").value(response.artifact);
    json.key("statesSubset").value(response.statesSubset);
    json.key("statesHopcroft").value(response.statesHopcroft);
    json.key("statesFinal").value(response.statesFinal);
    json.key("coverCubes").value(response.coverCubes);
    json.key("designMillis").value(response.designMillis);
    json.key("attempts").value(response.attempts);
    json.key("fromMemo").value(response.fromMemo);
    json.key("fromCache").value(response.fromCache);
    json.key("degraded").value(response.degraded);
    json.key("fallbacks");
    json.beginArray();
    for (const std::string &fallback : response.fallbacks)
        json.value(fallback);
    json.endArray();
    json.key("stages");
    renderStageSummaries(json, response.stages);
    if (!response.trace.empty()) {
        json.key("trace");
        json.beginArray();
        for (const obs::SpanRecord &span : response.trace) {
            json.beginObject();
            json.key("id").value(span.id);
            json.key("parent").value(span.parent);
            json.key("name").value(span.name);
            json.key("startMillis").value(span.startMillis);
            json.key("millis").value(span.durationMillis);
            json.key("thread").value(span.thread);
            json.endObject();
        }
        json.endArray();
    }
    // Emitted only when the evaluation stage ran, so pre-evaluation
    // clients keep accepting common responses under strict parsing.
    if (response.evaluated) {
        json.key("evaluated").value(true);
        json.key("evalBranches").value(response.evalBranches);
        json.key("evalMisses").value(response.evalMisses);
    }
    if (!response.ok) {
        json.key("error");
        json.beginObject();
        json.key("stage").value(response.error.stage);
        json.key("kind").value(response.error.kind);
        json.key("detail").value(response.error.detail);
        json.endObject();
    }
    json.endObject();
    return out.str();
}

FlowBudget
flowBudgetFromJson(const JsonValue &value)
{
    rejectUnknownFields(value,
                        {"deadlineMillis", "maxNfaStates", "maxDfaStates",
                         "maxEspressoIterations", "maxMinterms"},
                        "budget");
    FlowBudget budget;
    if (const JsonValue *v = value.find("deadlineMillis")) {
        budget.deadlineMillis = v->asNumber();
        if (budget.deadlineMillis < 0.0)
            throw std::invalid_argument("budget: negative deadlineMillis");
    }
    auto intLimit = [&value](const char *key, int &out) {
        if (const JsonValue *v = value.find(key)) {
            const int64_t limit = v->asInt();
            if (limit < 0 || limit > INT32_MAX) {
                throw std::invalid_argument(std::string("budget: ") + key +
                                            " out of range");
            }
            out = static_cast<int>(limit);
        }
    };
    intLimit("maxNfaStates", budget.maxNfaStates);
    intLimit("maxDfaStates", budget.maxDfaStates);
    intLimit("maxEspressoIterations", budget.maxEspressoIterations);
    if (const JsonValue *v = value.find("maxMinterms"))
        budget.maxMinterms = static_cast<size_t>(v->asUint());
    return budget;
}

FsmDesignOptions
fsmDesignOptionsFromJson(const JsonValue &value)
{
    rejectUnknownFields(value,
                        {"order", "minimizer", "keepStartupStates",
                         "flatProfiling", "memoizeStages", "patterns",
                         "budget"},
                        "options");
    FsmDesignOptions options;
    if (const JsonValue *v = value.find("order")) {
        const int64_t order = v->asInt();
        if (order < kMinOrder || order > kMaxOrder) {
            throw std::invalid_argument("options: order " +
                                        std::to_string(order) +
                                        " out of [1, 24]");
        }
        options.order = static_cast<int>(order);
    }
    if (const JsonValue *v = value.find("minimizer"))
        options.minimizer = minimizeAlgoFromName(v->asString());
    if (const JsonValue *v = value.find("keepStartupStates"))
        options.keepStartupStates = v->asBool();
    if (const JsonValue *v = value.find("flatProfiling"))
        options.flatProfiling = v->asBool();
    if (const JsonValue *v = value.find("memoizeStages"))
        options.memoizeStages = v->asBool();
    if (const JsonValue *v = value.find("patterns")) {
        rejectUnknownFields(
            *v, {"threshold", "dontCareMass", "unseenAreDontCare"},
            "patterns");
        if (const JsonValue *t = v->find("threshold")) {
            options.patterns.threshold = t->asNumber();
            if (options.patterns.threshold < 0.0 ||
                options.patterns.threshold > 1.0) {
                throw std::invalid_argument(
                    "patterns: threshold out of [0, 1]");
            }
        }
        if (const JsonValue *t = v->find("dontCareMass")) {
            options.patterns.dontCareMass = t->asNumber();
            if (options.patterns.dontCareMass < 0.0 ||
                options.patterns.dontCareMass > 1.0) {
                throw std::invalid_argument(
                    "patterns: dontCareMass out of [0, 1]");
            }
        }
        if (const JsonValue *t = v->find("unseenAreDontCare"))
            options.patterns.unseenAreDontCare = t->asBool();
    }
    if (const JsonValue *v = value.find("budget"))
        options.budget = flowBudgetFromJson(*v);
    return options;
}

DesignRequest
designRequestFromJson(const JsonValue &value)
{
    rejectUnknownFields(value,
                        {"id", "tenant", "class", "traceRef",
                         "traceBranches", "outcomes", "model", "options",
                         "trace", "evaluate"},
                        "DesignRequest");
    DesignRequest request;
    if (const JsonValue *v = value.find("id"))
        request.id = v->asUint();
    if (const JsonValue *v = value.find("tenant"))
        request.tenant = v->asString();
    if (const JsonValue *v = value.find("class")) {
        const auto klass = requestClassFromName(v->asString());
        if (!klass) {
            throw std::invalid_argument(
                "DesignRequest: unknown class '" + v->asString() + "'");
        }
        request.requestClass = *klass;
    }
    if (const JsonValue *v = value.find("traceRef"))
        request.traceRef = v->asString();
    if (const JsonValue *v = value.find("traceBranches"))
        request.traceBranches = v->asUint();
    if (const JsonValue *v = value.find("outcomes")) {
        request.outcomes.reserve(v->items().size());
        for (const JsonValue &outcome : v->items()) {
            const int64_t bit = outcome.asInt();
            if (bit != 0 && bit != 1) {
                throw std::invalid_argument(
                    "DesignRequest: outcome is not a 0/1 bit");
            }
            request.outcomes.push_back(static_cast<int>(bit));
        }
    }
    if (const JsonValue *v = value.find("model"))
        request.model = modelFromJson(*v);
    if (const JsonValue *v = value.find("options"))
        request.options = fsmDesignOptionsFromJson(*v);
    if (const JsonValue *v = value.find("trace"))
        request.trace = v->asBool();
    if (const JsonValue *v = value.find("evaluate"))
        request.evaluate = v->asBool();
    request.validate();
    return request;
}

DesignResponse
designResponseFromJson(const JsonValue &value)
{
    rejectUnknownFields(value,
                        {"id", "ok", "artifact", "statesSubset",
                         "statesHopcroft", "statesFinal", "coverCubes",
                         "designMillis", "attempts", "fromMemo",
                         "fromCache", "degraded", "fallbacks", "stages",
                         "trace", "error", "evaluated", "evalBranches",
                         "evalMisses"},
                        "DesignResponse");
    DesignResponse response;
    if (const JsonValue *v = value.find("id"))
        response.id = v->asUint();
    if (const JsonValue *v = value.find("ok"))
        response.ok = v->asBool();
    if (const JsonValue *v = value.find("artifact"))
        response.artifact = v->asString();
    if (const JsonValue *v = value.find("statesSubset"))
        response.statesSubset = static_cast<int>(v->asInt());
    if (const JsonValue *v = value.find("statesHopcroft"))
        response.statesHopcroft = static_cast<int>(v->asInt());
    if (const JsonValue *v = value.find("statesFinal"))
        response.statesFinal = static_cast<int>(v->asInt());
    if (const JsonValue *v = value.find("coverCubes"))
        response.coverCubes = v->asInt();
    if (const JsonValue *v = value.find("designMillis"))
        response.designMillis = v->asNumber();
    if (const JsonValue *v = value.find("attempts"))
        response.attempts = static_cast<int>(v->asInt());
    if (const JsonValue *v = value.find("fromMemo"))
        response.fromMemo = v->asBool();
    if (const JsonValue *v = value.find("fromCache"))
        response.fromCache = v->asBool();
    if (const JsonValue *v = value.find("degraded"))
        response.degraded = v->asBool();
    if (const JsonValue *v = value.find("fallbacks")) {
        for (const JsonValue &fallback : v->items())
            response.fallbacks.push_back(fallback.asString());
    }
    if (const JsonValue *v = value.find("stages")) {
        for (const JsonValue &stage : v->items())
            response.stages.push_back(stageSummaryFromJson(stage));
    }
    if (const JsonValue *v = value.find("trace")) {
        for (const JsonValue &span : v->items()) {
            rejectUnknownFields(span,
                                {"id", "parent", "name", "startMillis",
                                 "millis", "thread"},
                                "trace span");
            obs::SpanRecord record;
            if (const JsonValue *s = span.find("id"))
                record.id = s->asUint();
            if (const JsonValue *s = span.find("parent"))
                record.parent = s->asUint();
            if (const JsonValue *s = span.find("name"))
                record.name = s->asString();
            if (const JsonValue *s = span.find("startMillis"))
                record.startMillis = s->asNumber();
            if (const JsonValue *s = span.find("millis"))
                record.durationMillis = s->asNumber();
            if (const JsonValue *s = span.find("thread"))
                record.thread = static_cast<uint32_t>(s->asUint());
            response.trace.push_back(std::move(record));
        }
    }
    if (const JsonValue *v = value.find("evaluated"))
        response.evaluated = v->asBool();
    if (const JsonValue *v = value.find("evalBranches"))
        response.evalBranches = v->asUint();
    if (const JsonValue *v = value.find("evalMisses"))
        response.evalMisses = v->asUint();
    if (const JsonValue *v = value.find("error")) {
        rejectUnknownFields(*v, {"stage", "kind", "detail"}, "error");
        if (const JsonValue *e = v->find("stage"))
            response.error.stage = e->asString();
        if (const JsonValue *e = v->find("kind"))
            response.error.kind = e->asString();
        if (const JsonValue *e = v->find("detail"))
            response.error.detail = e->asString();
    }
    return response;
}

DesignRequest
designRequestFromJson(std::string_view text)
{
    return designRequestFromJson(JsonValue::parse(text));
}

DesignResponse
designResponseFromJson(std::string_view text)
{
    return designResponseFromJson(JsonValue::parse(text));
}

std::vector<DesignRequest>
designRequestsFromJson(std::string_view text)
{
    const JsonValue doc = JsonValue::parse(text);
    std::vector<DesignRequest> requests;
    requests.reserve(doc.items().size());
    for (const JsonValue &item : doc.items())
        requests.push_back(designRequestFromJson(item));
    return requests;
}

} // namespace autofsm
