/**
 * @file
 * Thread-pool-driven batch execution of the design flow.
 *
 * `BatchDesigner` takes N Markov models (or raw traces) — e.g. every hot
 * branch of a Figure 5 benchmark, or all benchmarks of Figure 4 — and
 * designs them concurrently. Guarantees:
 *
 *  - **Determinism**: results come back in input order and each machine is
 *    bit-identical to what the serial `designFsm` produces, regardless of
 *    thread count (the flow itself is single-threaded per item; threads
 *    only partition items).
 *  - **Memoization**: items with identical Markov model content (and the
 *    batch shares one `FsmDesignOptions`) are designed once; duplicates
 *    reuse the minimized DFA and are flagged `fromCache`.
 *  - **Failure isolation**: an item that throws reports its error in its
 *    own slot; the rest of the batch completes normally.
 */

#ifndef AUTOFSM_FLOW_BATCH_HH
#define AUTOFSM_FLOW_BATCH_HH

#include <cstdint>
#include <string>
#include <vector>

#include "flow/api.hh"
#include "flow/design_flow.hh"

namespace autofsm
{

class ThreadPool;

/**
 * Order-independent content hash of a model (table entries, order,
 * totals). Equal models hash equal on every platform and run; unequal
 * models collide only with ordinary 64-bit-hash probability, and the
 * batch designer confirms every hash match with markovEqual before
 * reusing a result.
 */
uint64_t markovContentHash(const MarkovModel &model);

/** Exact content equality of two models. */
bool markovEqual(const MarkovModel &a, const MarkovModel &b);

/**
 * Per-item retry policy of a batch run.
 *
 * A failing item is retried only when its error is *retryable*
 * (`errorKindRetryable`): budget and deadline overruns — which a bigger
 * budget can fix — and injected faults, which model transient
 * infrastructure errors. Invalid input and internal failures are
 * terminal and never retried. Each retry runs under the item's budget
 * escalated by `budgetEscalation` (compounding per attempt).
 */
struct RetryPolicy
{
    /** Total attempts per item (1 = no retries). */
    int maxAttempts = 1;
    /** Finite budget limits are multiplied by this per retry. */
    double budgetEscalation = 2.0;
};

/** Execution knobs of a batch run. */
struct BatchOptions
{
    /** Worker threads; 0 means ThreadPool::defaultThreadCount(). */
    unsigned threads = 0;
    /** Design identical models only once (content-hash memo cache). */
    bool memoize = true;
    /** Per-item retry policy (default: no retries). */
    RetryPolicy retry;
    /**
     * Run batch items on this long-lived pool instead of spawning
     * per-call threads (the serve daemon shares one pool across all
     * dispatches). nullptr (the default) keeps the per-call
     * `parallelFor` behavior, including inline in-order execution at
     * threads = 1.
     */
    ThreadPool *pool = nullptr;
};

/** Outcome of one batch item. */
struct BatchItemResult
{
    /** False when the flow threw for this item; see error. */
    bool ok = false;
    /** True when the result was reused from an identical earlier item. */
    bool fromCache = false;
    /** True when the flow succeeded via a degraded fallback path. */
    bool degraded = false;
    /** Flow attempts consumed (1 unless the retry policy kicked in). */
    int attempts = 1;
    /** Comma-joined fallback chain when degraded ("minimize:exact"). */
    std::string fallback;
    /** what() of the captured exception when !ok (the last attempt's). */
    std::string error;
    /** errorKindName of the failure when !ok and classifiable, "" else. */
    std::string errorKind;
    /** Failing flow stage when !ok ("minimize", ...), "api" otherwise. */
    std::string errorStage;
    /** @name Evaluation stage (when the request set evaluate and ok).
     * Dense replay of the designed machine over the request's own
     * stream; see DesignRequest::evaluate.
     */
    /// @{
    bool evaluated = false;
    uint64_t evalBranches = 0;
    uint64_t evalMisses = 0;
    /// @}
    /** Design artifacts and stage observations (valid when ok). */
    FlowResult flow;
};

/** Aggregate counters of the most recent batch run. */
struct BatchStats
{
    size_t items = 0;     ///< batch size
    size_t designed = 0;  ///< flow executions actually run
    size_t cacheHits = 0; ///< items served from the memo cache
    size_t failures = 0;  ///< items whose flow threw terminally
    size_t retries = 0;   ///< extra attempts consumed by the retry policy
    size_t degraded = 0;  ///< items that succeeded via a fallback path
    size_t evaluated = 0; ///< items whose evaluation replay ran
};

/** Parallel batch front end over DesignFlow. */
class BatchDesigner
{
  public:
    explicit BatchDesigner(FsmDesignOptions design = {},
                           BatchOptions options = {})
        : flow_(design), options_(options)
    {
    }

    const FsmDesignOptions &designOptions() const
    {
        return flow_.options();
    }

    const BatchOptions &batchOptions() const { return options_; }

    /** Counters of the most recent designAll/designTraces call. */
    const BatchStats &stats() const { return stats_; }

    /**
     * Design every request of @p requests concurrently. This is the
     * batch engine proper — designAll/designTraces wrap it — and what
     * the serve daemon's dispatcher feeds.
     *
     * Each request is resolved to a Markov model (resolveRequestModel;
     * a resolution failure is isolated to its own slot), deduplicated
     * against requests with identical model content *and* identical
     * design options, and designed under its own `options` with the
     * retry policy.
     *
     * Requests with `evaluate` set additionally replay their designed
     * machine over their own behavior stream (dense) after design.
     * Equal model content does not imply an equal stream, so every
     * evaluating request replays its own source; requests naming the
     * same (traceRef, traceBranches) share one stream resolve and one
     * multi-lane bit-sliced replay (sim/bitsliced.hh).
     *
     * @return One result per input, in input order.
     */
    std::vector<BatchItemResult>
    designRequests(const std::vector<DesignRequest> &requests);

    /**
     * Design every model of @p models under designOptions().
     *
     * @return One result per input, in input order.
     */
    std::vector<BatchItemResult>
    designAll(const std::vector<MarkovModel> &models);

    /**
     * Train one model per trace (in parallel, at designOptions().order),
     * then design them as designAll does.
     */
    std::vector<BatchItemResult>
    designTraces(const std::vector<std::vector<int>> &traces);

  private:
    DesignFlow flow_;
    BatchOptions options_;
    BatchStats stats_;
};

/**
 * Render one batch item as a DesignResponse (the serve daemon's and the
 * bench replay's response path): a successful item through
 * designResponseFromFlow plus the batch-level attempts/fromCache flags,
 * a failed one with its classified {stage, kind, detail}.
 */
DesignResponse designResponseFromItem(const DesignRequest &request,
                                      const BatchItemResult &item);

} // namespace autofsm

#endif // AUTOFSM_FLOW_BATCH_HH
