/**
 * @file
 * The unified request/response API of the design pipeline.
 *
 * `DesignRequest` names everything a caller can ask of the flow — where
 * the behavior comes from (a named workload trace, inline outcomes, or a
 * pre-trained Markov model), the design knobs (`FsmDesignOptions`), and
 * the serving metadata (tenant, request class) — and `DesignResponse`
 * carries everything a caller gets back: the serialized FSM artifact
 * (automata/dfa_io text), per-stage timings, degradation flags, and the
 * structured error taxonomy of flow/budget.hh.
 *
 * This is the single entry point of the library: the legacy
 * `designFsm`/`designFromTrace` free functions are one-line wrappers
 * over `runDesignRequest` (flow/compat.cc), `BatchDesigner` carries
 * DesignRequests internally, and the autofsm-serve daemon speaks
 * exactly this schema as JSON over its framed socket protocol — the
 * wire format and the in-process API are the same thing.
 *
 * Request classes follow "Prediction with Restricted Resources and
 * Finite Automata" (PAPERS.md, arXiv 0812.1949): each class names a
 * resource envelope, realized as a `FlowBudget` by `budgetForClass` and
 * applied by the daemon's admission controller.
 */

#ifndef AUTOFSM_FLOW_API_HH
#define AUTOFSM_FLOW_API_HH

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "flow/design_flow.hh"
#include "fsmgen/designer.hh"
#include "obs/trace_context.hh"
#include "support/json_parse.hh"

namespace autofsm
{

/** Admission classes a request can be submitted under. */
enum class RequestClass
{
    Interactive, ///< low-latency: tight deadline and state budgets
    Batch,       ///< relaxed deadline, generous state budgets
    Bulk,        ///< throughput: unlimited budget, lowest priority
};

/** Stable lower-case name of @p klass ("interactive", ...). */
const char *requestClassName(RequestClass klass);

/** Inverse of requestClassName; nullopt for an unknown name. */
std::optional<RequestClass> requestClassFromName(std::string_view name);

/**
 * The FlowBudget a request of @p klass runs under when its own budget is
 * unlimited (the admission-control mapping; see serve/server.hh).
 * Interactive is tight, batch generous, bulk unlimited.
 */
FlowBudget budgetForClass(RequestClass klass);

/**
 * One design request. Exactly one behavior source must be set:
 *
 *  - `traceRef`: a named workload trace, resolved through the installed
 *    TraceRefResolver (the daemon and benches install the synthetic
 *    branch-workload resolver; see setTraceRefResolver);
 *  - `outcomes`: the binary behavior stream inline;
 *  - `model`: a pre-trained Markov model (the in-process fast path the
 *    legacy designFsm wrapper uses; also serializable for wire clients
 *    that profile locally).
 */
struct DesignRequest
{
    /** Caller-chosen correlation id, echoed in the response. */
    uint64_t id = 0;
    /** Tenant label for per-tenant serving metrics. */
    std::string tenant = "anonymous";
    RequestClass requestClass = RequestClass::Interactive;

    /** Workload name (branchBenchmarkNames()) when non-empty. */
    std::string traceRef;
    /** Approximate trace length a traceRef resolves to. */
    uint64_t traceBranches = 100000;

    /** Inline behavior outcomes (each 0 or 1) when non-empty. */
    std::vector<int> outcomes;

    /** Pre-trained model (its order must match options.order). */
    std::optional<MarkovModel> model;

    FsmDesignOptions options;

    /**
     * Opt into span tracing: the response carries the request's span
     * tree in DesignResponse::trace. Traced requests are never deduped
     * against identical batch items (their stages must actually run).
     */
    bool trace = false;

    /**
     * Opt into evaluation: after a successful design, replay the
     * designed machine over the request's own behavior stream (dense —
     * predicting every record) through the bit-sliced engine
     * (sim/bitsliced.hh) and report evalBranches/evalMisses in the
     * response. Requires an outcome-bearing source (traceRef or inline
     * outcomes); a pre-trained model carries no stream to replay.
     * Requests sharing a (traceRef, traceBranches) stream are evaluated
     * together in one multi-lane replay by the batch engine.
     */
    bool evaluate = false;

    /**
     * The request's observability identity, minted at admission by the
     * serve daemon. In-process metadata — never serialized; wire
     * requests always start with a fresh context.
     */
    obs::TraceContext obsContext;

    /**
     * Check structural validity: exactly one source, outcome values in
     * {0,1}, order in [1,24], pattern knobs in range, plausible
     * traceBranches.
     *
     * @throws std::invalid_argument (classified invalid-input) on any
     *         violation.
     */
    void validate() const;
};

/** One FlowTrace stage record in serializable form. */
struct StageSummary
{
    std::string stage;
    double millis = 0.0;
    int64_t metric = 0;
    std::string metricName;
};

/** Structured failure of a request ({stage, kind, detail} triple). */
struct DesignError
{
    std::string stage;  ///< flow stage or serve site ("serve.admit")
    std::string kind;   ///< errorKindName of the classified failure
    std::string detail;
};

/** Everything a design request yields. */
struct DesignResponse
{
    /** Echo of DesignRequest::id. */
    uint64_t id = 0;
    /** True when an artifact was produced (possibly degraded). */
    bool ok = false;

    /** The designed machine, in automata/dfa_io text form. */
    std::string artifact;

    /** @name Design statistics. */
    /// @{
    int statesSubset = 0;
    int statesHopcroft = 0;
    int statesFinal = 0;
    int64_t coverCubes = 0;
    /// @}

    /** Total wall-clock across recorded stages, milliseconds. */
    double designMillis = 0.0;
    /** Flow attempts consumed (retry policy). */
    int attempts = 1;
    /** Tail served from the process-wide design-stage memo. */
    bool fromMemo = false;
    /** Result reused from an identical earlier item (batch memo). */
    bool fromCache = false;
    /** A degraded fallback path was taken (see fallbacks). */
    bool degraded = false;
    /** Fallback chain, "stage:kind" in execution order. */
    std::vector<std::string> fallbacks;
    /** Per-stage wall-clock and size metrics. */
    std::vector<StageSummary> stages;

    /**
     * The request's span tree (flat records, parent-linked) when the
     * request opted in with DesignRequest::trace. Feed to
     * obs::renderTraceEvents for the Chrome trace-event form.
     */
    std::vector<obs::SpanRecord> trace;

    /** @name Evaluation stage (set when the request asked to evaluate).
     * The designed machine's dense replay over the request's stream:
     * evalMisses mispredictions across evalBranches records.
     */
    /// @{
    bool evaluated = false;
    uint64_t evalBranches = 0;
    uint64_t evalMisses = 0;
    /// @}

    /** The classified failure when !ok. */
    DesignError error;
};

/**
 * Resolver for DesignRequest::traceRef, mapping (name, approx branches)
 * to a behavior stream. A plain function pointer so installation is a
 * single atomic store; the default (none installed) makes traceRef
 * requests fail invalid-input. serve::installWorkloadTraceResolver()
 * installs the synthetic branch-workload resolver.
 */
using TraceRefResolver = std::vector<int> (*)(const std::string &ref,
                                              uint64_t approxBranches);

/** Install @p resolver process-wide (nullptr uninstalls). */
void setTraceRefResolver(TraceRefResolver resolver);

/** The currently installed resolver, or nullptr. */
TraceRefResolver traceRefResolver();

/**
 * Resolve the request's behavior source to a Markov model at
 * options.order: pass a pre-trained model through, train on inline
 * outcomes (honoring options.flatProfiling), or resolve + train a
 * traceRef. Used by the batch pipeline so identical behaviors dedupe
 * before design.
 *
 * @throws std::invalid_argument on validation failure or unknown ref.
 */
MarkovModel resolveRequestModel(const DesignRequest &request);

/**
 * Resolve the request's outcome stream: inline outcomes verbatim, or
 * the traceRef through the installed resolver. This is what the
 * evaluation stage replays the designed machine against.
 *
 * @throws std::invalid_argument when the request's source is a
 *         pre-trained model (it carries no stream) or the ref cannot
 *         be resolved.
 */
std::vector<int> resolveRequestOutcomes(const DesignRequest &request);

/**
 * The single throwing entry point: validate, resolve the source, run
 * the design flow under request.options. The legacy designFsm /
 * designFromTrace wrappers delegate here; with a default budget the
 * artifacts are bit-identical to the pre-API pipeline.
 *
 * @throws FlowError / std::invalid_argument as the flow does.
 */
FlowResult runDesignRequest(const DesignRequest &request);

/**
 * The non-throwing service entry point: runDesignRequest with every
 * failure classified into DesignResponse::error (the daemon's per-item
 * behavior, usable in-process).
 */
DesignResponse designService(const DesignRequest &request);

/** Build the response for a successful flow run (ok = true). */
DesignResponse designResponseFromFlow(const DesignRequest &request,
                                      const FlowResult &flow);

/** @name JSON serialization (deterministic, support/json.hh format).
 * The from-JSON parsers are strict: unknown fields, out-of-range orders
 * and malformed values are rejected with std::invalid_argument. The
 * same schema is used verbatim by the daemon protocol, BatchDesigner
 * request replay, and the bench --request-file flag.
 */
/// @{
std::string toJson(const FlowBudget &budget);
std::string toJson(const FsmDesignOptions &options);
std::string toJson(const DesignRequest &request);
std::string toJson(const DesignResponse &response);

FlowBudget flowBudgetFromJson(const JsonValue &value);
FsmDesignOptions fsmDesignOptionsFromJson(const JsonValue &value);
DesignRequest designRequestFromJson(const JsonValue &value);
DesignResponse designResponseFromJson(const JsonValue &value);

DesignRequest designRequestFromJson(std::string_view text);
DesignResponse designResponseFromJson(std::string_view text);

/** Parse a JSON array of requests (the --request-file format). */
std::vector<DesignRequest> designRequestsFromJson(std::string_view text);
/// @}

} // namespace autofsm

#endif // AUTOFSM_FLOW_API_HH
