#include "flow/batch.hh"

#include <algorithm>
#include <chrono>
#include <functional>
#include <optional>
#include <unordered_map>

#include "flow/budget.hh"
#include "fsmgen/profile.hh"
#include "sim/bitsliced.hh"
#include "obs/metrics.hh"
#include "obs/span.hh"
#include "obs/trace_context.hh"
#include "support/failpoint.hh"
#include "support/thread_pool.hh"

namespace autofsm
{

namespace
{

/** splitmix64 finalizer: a cheap, well-mixed 64-bit hash step. */
uint64_t
mix64(uint64_t x)
{
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

/** Batch-level instrumentation, registered once. */
struct BatchTelemetry
{
    obs::Counter items;
    obs::Counter designed;
    obs::Counter cacheHits;
    obs::Counter failures;
    obs::Counter retries;
    obs::Counter retrySuccesses;
    obs::Counter degraded;
    obs::Counter evaluated;
    obs::Histogram queueWait;
    obs::Histogram itemMillis;
};

BatchTelemetry &
batchTelemetry()
{
    static BatchTelemetry telemetry = [] {
        obs::MetricsRegistry &registry = obs::globalMetrics();
        BatchTelemetry t;
        t.items = registry.counter("autofsm_batch_items_total",
                                   "Items submitted to BatchDesigner.");
        t.designed = registry.counter(
            "autofsm_batch_designed_total",
            "Flow executions actually run (memo-cache misses).");
        t.cacheHits = registry.counter(
            "autofsm_batch_cache_hits_total",
            "Items served from the content-hash memo cache.");
        t.failures = registry.counter("autofsm_batch_failures_total",
                                      "Items whose design flow threw.");
        t.retries = registry.counter(
            "autofsm_batch_retries_total",
            "Extra flow attempts consumed by the retry policy.");
        t.retrySuccesses = registry.counter(
            "autofsm_batch_retry_successes_total",
            "Items that succeeded on a retry attempt.");
        t.degraded = registry.counter(
            "autofsm_batch_degraded_total",
            "Items that completed via a degraded fallback path.");
        t.evaluated = registry.counter(
            "autofsm_batch_evaluated_total",
            "Items whose designed machine was replayed over its stream "
            "by the evaluation stage.");
        t.queueWait = registry.histogram(
            "autofsm_batch_queue_wait_millis",
            "Delay between batch start and an item starting to design.",
            obs::defaultLatencyBucketsMillis());
        t.itemMillis = registry.histogram(
            "autofsm_batch_item_millis",
            "Wall-clock of one designed (non-cached) batch item.",
            obs::defaultLatencyBucketsMillis());
        return t;
    }();
    return telemetry;
}

/**
 * Classify a failed attempt: record error/errorKind on @p slot and
 * decide whether the retry policy may try again.
 */
bool
classifyFailure(BatchItemResult &slot, std::exception_ptr error)
{
    slot.errorStage = "api";
    try {
        std::rethrow_exception(error);
    } catch (const FlowError &e) {
        slot.error = e.what();
        slot.errorKind = errorKindName(e.kind());
        slot.errorStage = e.stage();
        return errorKindRetryable(e.kind());
    } catch (const InjectedFault &e) {
        // Injected faults model transient infrastructure errors.
        slot.error = e.what();
        slot.errorKind = errorKindName(ErrorKind::Injected);
        slot.errorStage = e.site();
        return true;
    } catch (const std::invalid_argument &e) {
        slot.error = e.what();
        slot.errorKind = errorKindName(ErrorKind::InvalidInput);
        return false;
    } catch (const std::exception &e) {
        slot.error = e.what();
        slot.errorKind = errorKindName(ErrorKind::Internal);
        return false;
    } catch (...) {
        slot.error = "unknown exception in design flow";
        slot.errorKind = errorKindName(ErrorKind::Internal);
        return false;
    }
}

} // anonymous namespace

uint64_t
markovContentHash(const MarkovModel &model)
{
    // The table is an unordered_map, so per-entry hashes are combined
    // with a commutative sum to stay independent of iteration order.
    uint64_t entries = 0;
    for (const auto &[history, counts] : model.table()) {
        uint64_t h = mix64(history);
        h = mix64(h ^ counts.ones);
        h = mix64(h ^ counts.total);
        entries += h;
    }
    uint64_t hash = mix64(static_cast<uint64_t>(model.order()));
    hash = mix64(hash ^ model.totalObservations());
    hash = mix64(hash ^ static_cast<uint64_t>(model.distinctHistories()));
    return mix64(hash ^ entries);
}

bool
markovEqual(const MarkovModel &a, const MarkovModel &b)
{
    if (a.order() != b.order() ||
        a.totalObservations() != b.totalObservations() ||
        a.distinctHistories() != b.distinctHistories()) {
        return false;
    }
    for (const auto &[history, counts] : a.table()) {
        const HistoryCounts other = b.counts(history);
        if (other.ones != counts.ones || other.total != counts.total)
            return false;
    }
    return true;
}

std::vector<BatchItemResult>
BatchDesigner::designRequests(const std::vector<DesignRequest> &requests)
{
    stats_ = BatchStats();
    stats_.items = requests.size();

    // The caller's tracer (the daemon's private one under a
    // TracerBinding, globalTracer() otherwise). Pool workers do not
    // inherit the caller's thread-local binding, so each fanned-out
    // lambda re-binds it explicitly.
    obs::Tracer *const tracer = obs::currentTracer();

    auto runParallel = [this](size_t count, auto &&fn) {
        if (options_.pool != nullptr)
            parallelForOn(*options_.pool, count, fn);
        else
            parallelFor(count, fn, options_.threads);
    };

    // Phase 1: resolve every behavior source to a Markov model. A
    // request whose source cannot be resolved (unknown traceRef, bad
    // outcomes) fails in its own slot and skips the design phase.
    std::vector<BatchItemResult> results(requests.size());
    std::vector<std::optional<MarkovModel>> models(requests.size());
    runParallel(requests.size(), [&](size_t i) {
        obs::TracerBinding bind(tracer);
        obs::TraceContextScope context(requests[i].obsContext);
        std::optional<obs::SpanScope> span;
        if (requests[i].obsContext.sampled) {
            span.emplace(tracer, "batch.resolve",
                         requests[i].obsContext.rootSpan);
        }
        try {
            models[i] = resolveRequestModel(requests[i]);
        } catch (...) {
            classifyFailure(results[i], std::current_exception());
        }
    });

    // Phase 2: group identical work up front: representative[i] is the
    // index of the first resolvable item with equal model content AND
    // equal design options (requests carry their own options, so the
    // model alone is not the memo key). Grouping serially keeps the
    // representative choice (and thus the output) deterministic.
    std::vector<std::string> optionKeys(requests.size());
    for (size_t i = 0; i < requests.size(); ++i) {
        if (models[i])
            optionKeys[i] = toJson(requests[i].options);
    }
    std::vector<size_t> representative(requests.size());
    std::vector<size_t> unique;
    unique.reserve(requests.size());
    if (options_.memoize) {
        std::unordered_map<uint64_t, std::vector<size_t>> byHash;
        for (size_t i = 0; i < requests.size(); ++i) {
            representative[i] = i;
            if (!models[i])
                continue; // resolution failed; nothing to design
            if (requests[i].trace) {
                // A traced item must execute its own flow stages (its
                // spans are the deliverable), so it neither reuses a
                // representative nor serves as one.
                unique.push_back(i);
                continue;
            }
            const uint64_t hash = markovContentHash(*models[i]) ^
                mix64(std::hash<std::string>{}(optionKeys[i]));
            auto &bucket = byHash[hash];
            size_t rep = i;
            for (const size_t j : bucket) {
                if (optionKeys[i] == optionKeys[j] &&
                    markovEqual(*models[i], *models[j])) {
                    rep = j;
                    break;
                }
            }
            representative[i] = rep;
            if (rep == i) {
                bucket.push_back(i);
                unique.push_back(i);
            }
        }
    } else {
        for (size_t i = 0; i < requests.size(); ++i) {
            representative[i] = i;
            if (models[i])
                unique.push_back(i);
        }
    }

    obs::SpanScope batch_span(tracer, "batch.designAll");
    const uint64_t batch_span_id = batch_span.id();
    const auto batch_start = std::chrono::steady_clock::now();

    // Phase 3: design the unique items, each under its request's own
    // options, with the retry policy.
    runParallel(unique.size(), [&](size_t u) {
        const size_t i = unique[u];
        obs::TracerBinding bind(tracer);
        obs::TraceContextScope context(requests[i].obsContext);
        // Items fan out across pool threads, so the per-item span
        // names its parent explicitly: the owning request's root span
        // when one exists, else the shared batch root.
        const uint64_t request_root = requests[i].obsContext.rootSpan;
        obs::SpanScope item_span(
            tracer, "batch.item",
            request_root != 0 ? request_root : batch_span_id);
        batchTelemetry().queueWait.observe(
            std::chrono::duration<double, std::milli>(
                std::chrono::steady_clock::now() - batch_start)
                .count());
        BatchItemResult &slot = results[i];
        const int max_attempts = std::max(1, options_.retry.maxAttempts);
        for (int attempt = 1; attempt <= max_attempts; ++attempt) {
            slot.attempts = attempt;
            try {
                AUTOFSM_FAILPOINT("batch.item");
                // Retries run under an escalated budget: each retry
                // multiplies finite limits again.
                FsmDesignOptions opts = requests[i].options;
                double factor = 1.0;
                for (int r = 1; r < attempt; ++r)
                    factor *= options_.retry.budgetEscalation;
                opts.budget = opts.budget.escalated(factor);
                slot.flow = DesignFlow(opts).run(*models[i]);
                slot.ok = true;
                slot.error.clear();
                slot.errorKind.clear();
                slot.errorStage.clear();
                if (attempt > 1)
                    batchTelemetry().retrySuccesses.inc();
                break;
            } catch (...) {
                const bool retryable =
                    classifyFailure(slot, std::current_exception());
                if (!retryable || attempt == max_attempts)
                    break;
                batchTelemetry().retries.inc();
            }
        }
        if (slot.ok && slot.flow.trace.degraded()) {
            slot.degraded = true;
            std::string joined;
            for (const std::string &f : slot.flow.trace.fallbacks()) {
                if (!joined.empty())
                    joined += ',';
                joined += f;
            }
            slot.fallback = std::move(joined);
        }
        batchTelemetry().itemMillis.observe(item_span.finishMillis());
    });

    // Serve duplicates from their representative (including its failure,
    // if any: an identical request would fail identically).
    for (size_t i = 0; i < requests.size(); ++i) {
        const size_t rep = representative[i];
        if (rep == i)
            continue;
        results[i] = results[rep];
        results[i].fromCache = true;
        ++stats_.cacheHits;
    }

    // Phase 4: evaluation. Runs after duplicates are served so cached
    // items carry their machine too. Equal model content does not imply
    // an equal stream, so every evaluating request replays its OWN
    // source; requests naming the same (traceRef, traceBranches) stream
    // share one resolve and one multi-lane bit-sliced replay. Groups
    // run serially here — the replay engine fans each one out across
    // the pool internally (lane groups x trace shards).
    {
        std::vector<std::vector<size_t>> groups;
        std::unordered_map<std::string, size_t> by_stream;
        for (size_t i = 0; i < requests.size(); ++i) {
            if (!requests[i].evaluate || !results[i].ok)
                continue;
            if (requests[i].traceRef.empty()) {
                // Inline outcomes: every request is its own stream.
                groups.push_back({i});
                continue;
            }
            const std::string key = requests[i].traceRef + '\x1f' +
                std::to_string(requests[i].traceBranches);
            const auto [it, inserted] =
                by_stream.emplace(key, groups.size());
            if (inserted)
                groups.emplace_back();
            groups[it->second].push_back(i);
        }
        for (const std::vector<size_t> &group : groups) {
            obs::SpanScope eval_span(tracer, "batch.evaluate",
                                     batch_span_id);
            try {
                const std::vector<int> outcomes =
                    resolveRequestOutcomes(requests[group.front()]);
                const std::vector<uint64_t> words =
                    packOutcomeWords(outcomes);
                std::vector<BitslicedMachine> machines(group.size());
                for (size_t m = 0; m < group.size(); ++m) {
                    machines[m] = BitslicedMachine{
                        &results[group[m]].flow.design.fsm, nullptr};
                }
                BitslicedOptions replay;
                replay.threads = options_.threads;
                replay.pool = options_.pool;
                const std::vector<uint64_t> misses =
                    replayMachinesBitsliced(machines, words.data(),
                                            outcomes.size(), replay);
                for (size_t m = 0; m < group.size(); ++m) {
                    BatchItemResult &slot = results[group[m]];
                    slot.evaluated = true;
                    slot.evalBranches = outcomes.size();
                    slot.evalMisses = misses[m];
                }
            } catch (...) {
                // An unevaluable stream fails the whole group: the
                // caller asked for numbers this engine cannot produce,
                // and an ok response with silently-missing evaluation
                // would misreport that.
                for (const size_t i : group) {
                    classifyFailure(results[i],
                                    std::current_exception());
                    results[i].ok = false;
                    results[i].errorStage = "evaluate";
                }
            }
        }
    }

    stats_.designed = unique.size();
    for (const auto &result : results) {
        stats_.failures += !result.ok;
        stats_.degraded += result.degraded;
        stats_.evaluated += result.evaluated;
        if (!result.fromCache && result.attempts > 1)
            stats_.retries += static_cast<size_t>(result.attempts) - 1;
    }

    BatchTelemetry &telemetry = batchTelemetry();
    telemetry.items.inc(stats_.items);
    telemetry.designed.inc(stats_.designed);
    telemetry.cacheHits.inc(stats_.cacheHits);
    telemetry.failures.inc(stats_.failures);
    telemetry.degraded.inc(stats_.degraded);
    telemetry.evaluated.inc(stats_.evaluated);
    return results;
}

std::vector<BatchItemResult>
BatchDesigner::designAll(const std::vector<MarkovModel> &models)
{
    // Wrap each model as a DesignRequest under the shared design
    // options; the request engine's dedup and retry semantics are
    // exactly the historical designAll ones when all options are equal.
    std::vector<DesignRequest> requests(models.size());
    for (size_t i = 0; i < models.size(); ++i) {
        requests[i].id = i;
        requests[i].model = models[i];
        requests[i].options = flow_.options();
    }
    return designRequests(requests);
}

std::vector<BatchItemResult>
BatchDesigner::designTraces(const std::vector<std::vector<int>> &traces)
{
    const int order = flow_.options().order;
    const bool flat = flow_.options().flatProfiling;
    std::vector<MarkovModel> models(traces.size(), MarkovModel(order));
    auto train = [&](size_t i) {
        if (flat)
            models[i] = trainMarkovModel(traces[i], order);
        else
            models[i].train(traces[i]);
    };
    if (options_.pool != nullptr)
        parallelForOn(*options_.pool, traces.size(), train);
    else
        parallelFor(traces.size(), train, options_.threads);
    return designAll(models);
}

DesignResponse
designResponseFromItem(const DesignRequest &request,
                       const BatchItemResult &item)
{
    if (item.ok) {
        DesignResponse response =
            designResponseFromFlow(request, item.flow);
        response.attempts = item.attempts;
        response.fromCache = item.fromCache;
        response.evaluated = item.evaluated;
        response.evalBranches = item.evalBranches;
        response.evalMisses = item.evalMisses;
        return response;
    }
    DesignResponse response;
    response.id = request.id;
    response.attempts = item.attempts;
    response.fromCache = item.fromCache;
    response.error = {item.errorStage.empty() ? "api" : item.errorStage,
                      item.errorKind, item.error};
    return response;
}

} // namespace autofsm
