/**
 * @file
 * General-purpose-processor scenario (Section 6): design a confidence
 * estimator FSM for a stride value predictor, cross-trained on a suite
 * of applications, and compare it against saturating up/down counters
 * on the held-out application.
 *
 * Usage: confidence_estimation [benchmark] [history_length]
 *   benchmark in {gcc, go, groff, li, perl}
 */

#include <iomanip>
#include <iostream>

#include "fsmgen/designer.hh"
#include "vpred/conf_sim.hh"
#include "workloads/value_workloads.hh"

using namespace autofsm;

int
main(int argc, char **argv)
{
    const std::string benchmark = argc > 1 ? argv[1] : "gcc";
    const int history = argc > 2 ? atoi(argv[2]) : 8;
    const size_t loads = 150000;
    const StrideConfig stride; // 2K entries, as in the paper

    std::cout << "Designing value-prediction confidence for '" << benchmark
              << "' (history " << history << ", cross-trained)\n\n";

    // --- 1. Cross-train: aggregate every OTHER benchmark ---------------
    MarkovModel model(history);
    for (const std::string &other : valueBenchmarkNames()) {
        if (other == benchmark)
            continue;
        const ValueTrace trace = makeValueTrace(other, loads);
        collectConfidenceModels(trace, stride, {&model});
        std::cout << "  trained on " << other << " ("
                  << model.totalObservations() << " observations so far)\n";
    }

    // --- 2. Sweep the confidence threshold to trace the Pareto curve ---
    const ValueTrace own = makeValueTrace(benchmark, loads);

    std::cout << "\ncustom FSM curve (threshold -> accuracy / coverage / "
                 "states):\n"
              << std::fixed << std::setprecision(1);
    for (double threshold : {0.5, 0.7, 0.8, 0.9, 0.95}) {
        FsmDesignOptions design;
        design.order = history;
        design.patterns.threshold = threshold;
        const FsmDesignResult result = designFsm(model, design);

        FsmConfidence estimator(static_cast<size_t>(stride.entries),
                                result.fsm);
        const ConfidenceResult r =
            simulateConfidence(own, stride, estimator);
        std::cout << "  thr " << threshold * 100.0 << "%: accuracy "
                  << r.accuracy() * 100.0 << "%, coverage "
                  << r.coverage() * 100.0 << "%, " << result.statesFinal
                  << " states\n";
    }

    // --- 3. The SUD counters the paper compares against ----------------
    std::cout << "\nsaturating up/down counters:\n";
    for (const SudConfig &config :
         {SudConfig{10, 1, 1, 5}, SudConfig{10, 1, 10, 8},
          SudConfig{40, 1, 5, 36}, SudConfig::resetting(20, 16)}) {
        SudConfidence estimator(static_cast<size_t>(stride.entries),
                                config);
        const ConfidenceResult r =
            simulateConfidence(own, stride, estimator);
        std::cout << "  " << estimator.name() << ": accuracy "
                  << r.accuracy() * 100.0 << "%, coverage "
                  << r.coverage() * 100.0 << "%\n";
    }
    return 0;
}
