/**
 * @file
 * Customized-processor scenario (Section 7): given an embedded
 * application (the synthetic gsm model), profile it with the XScale
 * baseline, automatically design per-branch FSM predictors for the
 * worst branches, graft them onto the BTB as custom entries, and
 * measure the misprediction-rate/area tradeoff on a different input.
 *
 * Usage: custom_branch_predictor [benchmark] [num_custom_entries]
 *   benchmark in {compress, ijpeg, vortex, gsm, g721, gs}
 */

#include <iomanip>
#include <iostream>

#include "bpred/custom.hh"
#include "bpred/simulate.hh"
#include "bpred/trainer.hh"
#include "synth/vhdl.hh"
#include "workloads/trace_cache.hh"

#include "../bench/bench_common.hh"

using namespace autofsm;

int
main(int argc, char **argv)
{
    const auto args = bench::parseBenchArgs(
        argc, argv, "[benchmark] [num_custom_entries]");
    const std::string benchmark = args.positionalOr(0, "gsm");
    const int num_custom = static_cast<int>(args.positionalOr(1, 4));

    std::cout << "Customizing a branch predictor for '" << benchmark
              << "'\n\n";

    // --- 1. Profile on the training input ------------------------------
    const std::shared_ptr<const BranchTrace> train =
        cachedBranchTrace(benchmark, WorkloadInput::Train, 200000);
    CustomTrainingOptions options;
    options.maxCustomBranches = num_custom;
    options.historyLength = 9; // the paper's setting
    const std::vector<TrainedBranch> trained =
        trainCustomPredictors(*train, options);

    std::cout << "worst branches by baseline mispredictions:\n";
    for (const auto &branch : trained) {
        std::cout << "  pc 0x" << std::hex << branch.pc << std::dec
                  << ": " << branch.baselineMisses << " misses -> FSM with "
                  << branch.design.statesFinal << " states, patterns "
                  << branch.design.cover.toString() << "\n";
    }

    // --- 2. Build the customized architecture --------------------------
    CustomBranchPredictor custom;
    for (const auto &branch : trained)
        custom.addCustomEntry(branch.pc, branch.design.fsm);

    // --- 3. Evaluate on a *different* input (custom-diff) --------------
    const std::shared_ptr<const BranchTrace> test =
        cachedBranchTrace(benchmark, WorkloadInput::Test, 200000);

    XScaleBtb baseline;
    const BpredSimResult base_r = simulateBranchPredictor(baseline, *test);
    const BpredSimResult custom_r = simulateBranchPredictor(custom, *test);

    std::cout << std::fixed << std::setprecision(2);
    std::cout << "\nXScale baseline: " << base_r.missRate() * 100.0
              << "% mispredictions, area " << std::setprecision(0)
              << baseline.area() << "\n";
    std::cout << std::setprecision(2);
    std::cout << "customized:      " << custom_r.missRate() * 100.0
              << "% mispredictions, area " << std::setprecision(0)
              << custom.area() << " (" << custom.numCustomEntries()
              << " custom entries)\n";

    // --- 4. Emit hardware for the single best machine ------------------
    if (!trained.empty()) {
        VhdlOptions vhdl;
        vhdl.entityName = "custom_branch_0";
        std::cout << "\nVHDL for the top branch's machine:\n"
                  << toVhdl(trained.front().design.fsm, vhdl);
    }
    bench::exportMetricsIfRequested(args);
    return 0;
}
