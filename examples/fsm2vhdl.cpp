/**
 * @file
 * fsm2vhdl: a small command-line tool exposing the design flow.
 *
 * Reads history patterns from the command line, builds the minimal
 * predictor FSM that fires on them, and prints Graphviz DOT and
 * synthesizable VHDL - the last mile of the paper's toolchain.
 *
 * Usage: fsm2vhdl [--verilog] PATTERN [PATTERN...]
 *   Patterns are strings over {0,1,x}, oldest outcome first; all must
 *   share one length (the history length N). Example:
 *     fsm2vhdl 0x1x 01xx
 */

#include <iostream>
#include <string>
#include <vector>

#include "automata/dfa.hh"
#include "automata/nfa.hh"
#include "automata/regex.hh"
#include "logicmin/minimize.hh"
#include "synth/area.hh"
#include "synth/verilog.hh"
#include "synth/vhdl.hh"

using namespace autofsm;

int
main(int argc, char **argv)
{
    std::vector<std::string> patterns;
    bool verilog = false;
    for (int i = 1; i < argc; ++i) {
        if (std::string(argv[i]) == "--verilog")
            verilog = true;
        else
            patterns.emplace_back(argv[i]);
    }
    if (patterns.empty()) {
        std::cerr << "usage: fsm2vhdl [--verilog] PATTERN [PATTERN...]\n"
                  << "  e.g. fsm2vhdl 0x1x 01xx\n";
        return 1;
    }

    const size_t width = patterns.front().size();
    for (const auto &pattern : patterns) {
        if (pattern.size() != width || pattern.empty() || width > 16) {
            std::cerr << "error: patterns must share one length "
                         "(1..16)\n";
            return 1;
        }
        for (char c : pattern) {
            if (c != '0' && c != '1' && c != 'x' && c != 'X') {
                std::cerr << "error: patterns use only 0, 1, x\n";
                return 1;
            }
        }
    }

    // Expand the patterns into an exact ON-set, then re-minimize: the
    // user's patterns may overlap or be collapsible.
    const int order = static_cast<int>(width);
    TruthTable table(order);
    for (uint32_t h = 0; h < (1u << order); ++h) {
        for (const auto &pattern : patterns) {
            if (Cube::fromPattern(pattern).contains(h)) {
                table.addOn(h);
                break;
            }
        }
    }
    if (table.onSet().empty()) {
        std::cerr << "error: patterns match nothing\n";
        return 1;
    }
    const Cover cover = minimize(table);

    const Regex regex = regexFromCover(cover);
    const Dfa fsm = Dfa::fromNfa(Nfa::fromRegex(regex))
                        .minimizeHopcroft()
                        .steadyStateReduce();

    const AreaEstimate area = estimateFsmArea(fsm);
    std::cout << "minimized patterns: " << cover.toString() << "\n";
    std::cout << "regular expression: " << regex.toString() << "\n";
    std::cout << "states: " << fsm.numStates() << ", estimated area "
              << area.area << "\n\n";
    std::cout << fsm.toDot("fsm2vhdl") << "\n";
    if (verilog)
        std::cout << toVerilog(fsm) << "\n";
    else
        std::cout << toVhdl(fsm) << "\n";
    return 0;
}
