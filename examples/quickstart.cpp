/**
 * @file
 * Quickstart: the paper's Section 4 worked example, end to end.
 *
 * Takes the behavior trace t = 0000 1000 1011 1101 1110 1111, builds the
 * second-order Markov model, partitions the histories, minimizes the
 * "predict 1" set, converts it into a regular expression and then into
 * the final predictor FSM (Figure 1), simulates the predictor on the
 * trace, and emits Graphviz DOT and synthesizable VHDL.
 *
 * Build & run:
 *   cmake -B build -G Ninja && cmake --build build
 *   ./build/examples/quickstart
 */

#include <iomanip>
#include <iostream>

#include "flow/design_flow.hh"
#include "fsmgen/predictor_fsm.hh"
#include "synth/area.hh"
#include "synth/vhdl.hh"

using namespace autofsm;

int
main()
{
    // --- 1. The behavior trace (Section 4.2) ---------------------------
    std::vector<int> trace;
    for (char c : std::string("000010001011110111101111"))
        trace.push_back(c == '1');

    // --- 2. Run the automated design flow ------------------------------
    // DesignFlow is the stage-oriented front door; the one-line legacy
    // equivalent is designFromTrace(trace, options).
    FsmDesignOptions options;
    options.order = 2;                  // history length N
    options.patterns.threshold = 0.5;   // predict 1 when P[1|h] >= 1/2
    options.patterns.dontCareMass = 0.0; // keep every history specified
    const DesignFlow flow(options);
    const FlowResult run = flow.runOnTrace(trace);
    const FsmDesignResult &result = run.design;

    std::cout << "trace: 0000 1000 1011 1101 1110 1111 (N = "
              << options.order << ")\n\n";

    // --- 3. Inspect every stage of the flow ----------------------------
    MarkovModel model(options.order);
    model.train(trace);
    std::cout << "Markov model:\n";
    for (uint32_t h = 0; h < 4; ++h) {
        std::cout << "  P[1|" << toBinary(h, 2)
                  << "] = " << model.counts(h).ones << "/"
                  << model.counts(h).total << "\n";
    }

    std::cout << "\nstage trace (wall clock per pipeline stage):\n";
    for (const auto &stage : run.trace.stages()) {
        std::cout << "  " << std::setw(12) << std::left
                  << flowStageName(stage.stage) << std::right << std::fixed
                  << std::setprecision(3) << std::setw(9) << stage.millis
                  << " ms   " << stage.metric << " " << stage.metricName
                  << "\n";
    }
    std::cout.unsetf(std::ios::fixed);

    std::cout << "\npredict-1 set:  ";
    for (uint32_t h : result.patterns.predictOne)
        std::cout << toBinary(h, 2) << " ";
    std::cout << "\npredict-0 set:  ";
    for (uint32_t h : result.patterns.predictZero)
        std::cout << toBinary(h, 2) << " ";
    std::cout << "\nminimized:      " << result.cover.toString() << "\n";
    std::cout << "regex:          " << result.regexText << "\n";
    std::cout << "states:         " << result.statesSubset
              << " (subset) -> " << result.statesHopcroft
              << " (Hopcroft) -> " << result.statesFinal
              << " (start-state reduction)\n";

    // --- 4. Use the machine as a live predictor ------------------------
    PredictorFsm predictor(result.fsm);
    int correct = 0, total = 0;
    for (size_t i = 0; i < trace.size(); ++i) {
        if (i >= static_cast<size_t>(options.order)) {
            correct += predictor.predict() == trace[i];
            ++total;
        }
        predictor.update(trace[i]);
    }
    std::cout << "\nsimulated on t: " << correct << "/" << total
              << " predictions correct\n";

    // --- 5. Hardware artifacts ------------------------------------------
    const AreaEstimate area = estimateFsmArea(result.fsm);
    std::cout << "estimated area: " << area.area << " units ("
              << area.flops << " flops, " << area.terms << " terms)\n\n";
    std::cout << "Graphviz:\n" << result.fsm.toDot("quickstart") << "\n";
    std::cout << "VHDL:\n" << toVhdl(result.fsm) << "\n";
    return 0;
}
